"""repro.api — the supported public surface of the reproduction.

Everything downstream code needs lives here (reference: ``docs/api.md``;
layering and determinism contract: ``docs/architecture.md``):

* :class:`Session` — context-managed façade owning result caching, backend
  selection, pooled runners, progress callbacks and the optional persistent
  verdict store (``session.table(2)``, ``session.figure(4)``,
  ``session.ablation("keywords")``, ``session.run(spec)``,
  ``session.sweep(seeds=[...])``, ``session.run_everything()``).
* :class:`ExperimentSpec` / :class:`Shard` / :class:`ShardManifest` — the
  declarative, shardable description of a run and the manifest that
  validates partial results before merging.
* :meth:`Session.sweep_seeds` / :func:`~repro.api.sweep.summarize_sweep` —
  multi-seed statistical sweeps reporting mean and content-keyed bootstrap
  CI per cell (:class:`~repro.api.sweep.SweepSummary`).
* :class:`~repro.core.runner.ResultSet` (re-exported) with
  :meth:`~repro.core.runner.ResultSet.merge` and the
  ``to_payload``/``from_payload`` JSON round trip.
* :class:`~repro.analysis.store.VerdictStore` — the on-disk, cross-process
  verdict cache (``Session(verdict_store=...)``, CLI ``--verdict-store`` /
  ``cache`` subcommand) that makes warm re-runs skip sandbox execution
  entirely.
* The shard payload helpers behind the ``repro shard`` / ``repro merge``
  CLI subcommands, plus :class:`IncrementalMerge` for folding shards in as
  they complete.
* :meth:`Session.dispatch` / :class:`~repro.dispatch.ShardDriver` — the
  resumable distributed driver (re-exported from :mod:`repro.dispatch`)
  with its shard-level :class:`~repro.dispatch.ResultStore`: completed
  shard payloads survive the process, so a killed run resumes instead of
  recomputing, and a complete dispatch is byte-identical to ``run --json``.

The free functions in :mod:`repro.harness.experiments` are deprecated thin
wrappers over the process-default :class:`Session` (migration table in
``docs/api.md``).

Example — declare a run, shard it, and open a session:

>>> from repro.api import ExperimentSpec, Session
>>> spec = ExperimentSpec(seeds=(7,), languages=("julia",))
>>> len(spec.cells())
24
>>> [len(shard) for shard in spec.partition(3)]
[8, 8, 8]
>>> spec.shard(1, 3).entry().seed
7
>>> with Session(seed=7) as session:
...     session.backend
'serial'
"""

from __future__ import annotations

from repro.analysis.store import VerdictStore, default_store_path
from repro.core.runner import RecordResult, ResultSet
from repro.harness.experiments import ExperimentReport

from repro.api.session import Session, default_session, reset_default_session
from repro.api.spec import (
    SHARD_FORMAT,
    ExperimentSpec,
    IncrementalMerge,
    Shard,
    ShardEntry,
    ShardManifest,
    load_shard_payload,
    merge_shard_parts,
    merge_shard_payloads,
    shard_payload,
)
from repro.api.sweep import CellStatistics, SweepSummary, summarize_sweep
#: Names re-exported lazily from :mod:`repro.dispatch` (PEP 562): the
#: dispatch layer imports ``repro.api.spec``, so importing it eagerly here
#: would be circular whenever ``repro.dispatch`` is imported first.
_DISPATCH_EXPORTS = frozenset(
    {
        "DISPATCH_BACKENDS",
        "DispatchReport",
        "ResultStore",
        "ShardDriver",
        "ShardOutcome",
        "default_result_store_path",
    }
)


def __getattr__(name: str):
    if name in _DISPATCH_EXPORTS:
        import repro.dispatch

        return getattr(repro.dispatch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Session",
    "default_session",
    "reset_default_session",
    "ExperimentSpec",
    "IncrementalMerge",
    "Shard",
    "ShardEntry",
    "ShardManifest",
    "SHARD_FORMAT",
    "shard_payload",
    "load_shard_payload",
    "merge_shard_parts",
    "merge_shard_payloads",
    "CellStatistics",
    "SweepSummary",
    "summarize_sweep",
    "ResultSet",
    "RecordResult",
    "ExperimentReport",
    "VerdictStore",
    "default_store_path",
    "DISPATCH_BACKENDS",
    "DispatchReport",
    "ResultStore",
    "ShardDriver",
    "ShardOutcome",
    "default_result_store_path",
]
