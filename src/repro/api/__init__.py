"""repro.api — the supported public surface of the reproduction.

Everything downstream code needs lives here (reference: ``docs/api.md``;
layering and determinism contract: ``docs/architecture.md``):

* :class:`Session` — context-managed façade owning result caching, backend
  selection, pooled runners, progress callbacks and the optional persistent
  verdict store (``session.table(2)``, ``session.figure(4)``,
  ``session.ablation("keywords")``, ``session.run(spec)``,
  ``session.sweep(seeds=[...])``, ``session.run_everything()``).
* :class:`ExperimentSpec` / :class:`Shard` / :class:`ShardManifest` — the
  declarative, shardable description of a run and the manifest that
  validates partial results before merging.
* :class:`~repro.core.runner.ResultSet` (re-exported) with
  :meth:`~repro.core.runner.ResultSet.merge` and the
  ``to_payload``/``from_payload`` JSON round trip.
* :class:`~repro.analysis.store.VerdictStore` — the on-disk, cross-process
  verdict cache (``Session(verdict_store=...)``, CLI ``--verdict-store`` /
  ``cache`` subcommand) that makes warm re-runs skip sandbox execution
  entirely.
* The shard payload helpers behind the ``repro shard`` / ``repro merge``
  CLI subcommands.

The free functions in :mod:`repro.harness.experiments` are deprecated thin
wrappers over the process-default :class:`Session` (migration table in
``docs/api.md``).

Example — declare a run, shard it, and open a session:

>>> from repro.api import ExperimentSpec, Session
>>> spec = ExperimentSpec(seeds=(7,), languages=("julia",))
>>> len(spec.cells())
24
>>> [len(shard) for shard in spec.partition(3)]
[8, 8, 8]
>>> spec.shard(1, 3).entry().seed
7
>>> with Session(seed=7) as session:
...     session.backend
'serial'
"""

from __future__ import annotations

from repro.analysis.store import VerdictStore, default_store_path
from repro.core.runner import RecordResult, ResultSet
from repro.harness.experiments import ExperimentReport

from repro.api.session import Session, default_session, reset_default_session
from repro.api.spec import (
    SHARD_FORMAT,
    ExperimentSpec,
    Shard,
    ShardEntry,
    ShardManifest,
    load_shard_payload,
    merge_shard_parts,
    merge_shard_payloads,
    shard_payload,
)

__all__ = [
    "Session",
    "default_session",
    "reset_default_session",
    "ExperimentSpec",
    "Shard",
    "ShardEntry",
    "ShardManifest",
    "SHARD_FORMAT",
    "shard_payload",
    "load_shard_payload",
    "merge_shard_parts",
    "merge_shard_payloads",
    "ResultSet",
    "RecordResult",
    "ExperimentReport",
    "VerdictStore",
    "default_store_path",
]
