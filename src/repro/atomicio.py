"""Durable atomic file publication, shared by every on-disk store.

``os.replace`` alone makes a write *atomic* (readers see the old bytes or
the new bytes, never a mix) but not *durable*: after a power loss the
filesystem may have persisted the rename without the data, leaving an
empty-but-renamed file where a valid entry used to be.  The cure is the
classic write → flush → ``fsync`` → rename sequence (plus a best-effort
directory fsync so the rename itself survives), and it must be the *same*
sequence everywhere — :class:`repro.analysis.store.ContentStore` and
:class:`repro.dispatch.queue.FileQueue` both publish JSON documents this
way, so this module is the single implementation both build on.

Callers that need fail-soft semantics (a cache write must never break the
computation it caches) catch ``OSError`` at the call site; this function
always raises so the decision stays visible where it matters.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["write_atomic_bytes", "write_atomic_json"]


def write_atomic_json(
    path: str | Path,
    payload: object,
    *,
    indent: int | None = None,
    durable: bool = True,
) -> None:
    """Publish ``payload`` as JSON at ``path`` atomically and durably.

    The document is serialised with ``sort_keys=True`` (stable bytes for
    byte-identity checks) and published through :func:`write_atomic_bytes`.
    """
    data = json.dumps(payload, indent=indent, sort_keys=True).encode("utf-8")
    write_atomic_bytes(path, data, durable=durable)


def write_atomic_bytes(
    path: str | Path,
    data: bytes,
    *,
    durable: bool = True,
) -> None:
    """Publish ``data`` at ``path`` atomically and durably.

    The bytes are written to a unique temporary file in the target
    directory, flushed and fsynced, then published with ``os.replace``.
    With ``durable=True`` (the default) the containing directory is fsynced
    as well, best-effort, so a power loss cannot leave an empty-but-renamed
    file — the worst case is the *old* state, never a torn one.

    Raises ``OSError`` on any failure; the temporary file is removed
    best-effort so a failed write leaves no droppings behind.
    """
    path = Path(path)
    handle = tempfile.NamedTemporaryFile(
        "wb",
        dir=path.parent,
        prefix=f".{path.stem}.",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            handle.write(data)
            handle.flush()
            if durable:
                os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except OSError:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    if durable:
        _fsync_directory(path.parent)


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory (persists a completed rename).

    Not every filesystem allows opening directories for fsync (and Windows
    has no equivalent at all), so failures are swallowed: the rename is
    already atomic, durability of the *entry data* was handled by the file
    fsync, and "the rename may be lost on power cut" degrades to "the old
    state", which every store here treats as recompute.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform/filesystem dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform/filesystem dependent
        pass
    finally:
        os.close(fd)
