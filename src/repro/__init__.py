"""repro — reproduction of Godoy et al., *Evaluation of OpenAI Codex for HPC
Parallel Programming Models Kernel Generation* (ICPP-W 2023).

The package is organised as a set of substrates plus the paper's core
methodology:

* :mod:`repro.kernels` — the six HPC numerical kernels (AXPY, GEMV, GEMM,
  SpMV, Jacobi, CG) with problem generators and numerical oracles.
* :mod:`repro.models` — languages, programming models and the Table 1
  experiment grid.
* :mod:`repro.popularity` — synthetic popularity / maturity priors (GitHut,
  TIOBE style) that drive the simulated code-suggestion engine.
* :mod:`repro.corpus` — the synthetic "public code" corpus: correct templates
  per (kernel, language, model) and mutation operators producing realistic
  incorrect variants.
* :mod:`repro.codex` — *SimCodex*, the simulated Copilot/Codex suggestion
  engine (prompt → up to ten code suggestions).
* :mod:`repro.analysis` — per-language lexers, programming-model detectors
  and kernel semantics checkers used to judge suggestions.
* :mod:`repro.sandbox` — execution substrate for Python suggestions,
  including numpy-backed cuPy/pyCUDA/Numba-CUDA shims and a miniature CUDA-C
  kernel interpreter.
* :mod:`repro.core` — the proficiency metric, the suggestion-set evaluator,
  the experiment runner, aggregation and the embedded paper reference data.
* :mod:`repro.harness` — table/figure rendering, record persistence and the
  CLI (including the ``shard``/``merge`` subcommands).
* :mod:`repro.api` — **the supported entry point**: the :class:`Session`
  façade (per-session caching, backend selection, progress) plus the
  declarative, shardable :class:`ExperimentSpec`/:class:`Shard` grids with
  mergeable ``ResultSet``s and validating ``ShardManifest``s.
"""

from __future__ import annotations

__version__ = "1.0.0"

__all__ = [
    "__version__",
]
