"""Execution sandbox for Python suggestions.

The paper's authors judged GPU-targeting Python suggestions (cuPy, pyCUDA,
Numba) by reading them; we go further and *execute* them against the
numerical oracles, replacing the unavailable GPU stack with:

* :mod:`repro.sandbox.fake_numba` — a no-op JIT (``@njit``/``@jit`` return
  the undecorated function, ``prange`` is ``range``),
* :mod:`repro.sandbox.fake_cupy` — a numpy-backed ``cupy`` with ``asarray``,
  ``asnumpy``, ufuncs and ``RawKernel``,
* :mod:`repro.sandbox.fake_pycuda` — ``pycuda.autoinit``, ``pycuda.driver``
  (``In``/``Out``/``InOut``) and ``SourceModule``,
* :mod:`repro.sandbox.cuda_c` — a miniature CUDA-C interpreter that actually
  runs the raw kernels embedded in ``RawKernel``/``SourceModule`` sources on
  a simulated grid/block/thread device model.

``evaluate_python_suggestion`` is the entry point used by the analyzers.
"""

from __future__ import annotations

from repro.sandbox.executor import ExecutionResult, evaluate_python_suggestion, run_python_suggestion
from repro.sandbox.tasks import SandboxTask, get_task
from repro.sandbox.cuda_c import CudaModule, CudaKernel

__all__ = [
    "ExecutionResult",
    "evaluate_python_suggestion",
    "run_python_suggestion",
    "SandboxTask",
    "get_task",
    "CudaModule",
    "CudaKernel",
]
