"""Execution sandbox for Python suggestions.

The paper's authors judged GPU-targeting Python suggestions (cuPy, pyCUDA,
Numba) by reading them; we go further and *execute* them against the
numerical oracles, replacing the unavailable GPU stack with:

* :mod:`repro.sandbox.fake_numba` — a no-op JIT (``@njit``/``@jit`` return
  the undecorated function, ``prange`` is ``range``),
* :mod:`repro.sandbox.fake_cupy` — a numpy-backed ``cupy`` with ``asarray``,
  ``asnumpy``, ufuncs and ``RawKernel``,
* :mod:`repro.sandbox.fake_pycuda` — ``pycuda.autoinit``, ``pycuda.driver``
  (``In``/``Out``/``InOut``) and ``SourceModule``,
* :mod:`repro.sandbox.cuda_c` — a miniature CUDA-C interpreter that actually
  runs the raw kernels embedded in ``RawKernel``/``SourceModule`` sources on
  a simulated grid/block/thread device model.

``evaluate_python_suggestions`` (plural, batched: one fake-runtime context
per batch, one oracle per kernel group) is the entry point the analyzers
use; ``evaluate_python_suggestion`` evaluates a single suggestion the same
way.  ``sandbox_execution_count`` counts every module actually executed —
how warm-cache runs prove they executed nothing.
"""

from __future__ import annotations

from repro.sandbox.executor import (
    ExecutionResult,
    evaluate_python_suggestion,
    evaluate_python_suggestions,
    run_python_suggestion,
    sandbox_execution_count,
)
from repro.sandbox.tasks import SandboxTask, get_task
from repro.sandbox.cuda_c import CudaModule, CudaKernel

__all__ = [
    "ExecutionResult",
    "evaluate_python_suggestion",
    "evaluate_python_suggestions",
    "run_python_suggestion",
    "sandbox_execution_count",
    "SandboxTask",
    "get_task",
    "CudaModule",
    "CudaKernel",
]
