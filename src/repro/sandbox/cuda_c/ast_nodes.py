"""AST node definitions for the CUDA-C subset."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Param", "KernelDef", "Block",
    "Decl", "Assign", "If", "For", "While", "Return", "ExprStmt", "Break", "Continue",
    "Num", "Var", "Index", "Member", "Unary", "Binary", "Ternary", "Call",
]


# -- expressions -------------------------------------------------------------

@dataclass(frozen=True)
class Num:
    value: float | int


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class Index:
    base: "Var | Index"
    index: object


@dataclass(frozen=True)
class Member:
    base: str
    field: str


@dataclass(frozen=True)
class Unary:
    op: str
    operand: object


@dataclass(frozen=True)
class Binary:
    op: str
    left: object
    right: object


@dataclass(frozen=True)
class Ternary:
    cond: object
    then: object
    orelse: object


@dataclass(frozen=True)
class Call:
    name: str
    args: tuple = ()


# -- statements ---------------------------------------------------------------

@dataclass(frozen=True)
class Block:
    statements: tuple = ()


@dataclass(frozen=True)
class Decl:
    type: str
    name: str
    init: object | None = None


@dataclass(frozen=True)
class Assign:
    target: object      # Var or Index
    op: str             # "=", "+=", "-=", "*=", "/="
    value: object


@dataclass(frozen=True)
class If:
    cond: object
    then: Block
    orelse: Block | None = None


@dataclass(frozen=True)
class For:
    init: object | None
    cond: object | None
    update: object | None
    body: Block


@dataclass(frozen=True)
class While:
    cond: object
    body: Block


@dataclass(frozen=True)
class Return:
    value: object | None = None


@dataclass(frozen=True)
class Break:
    pass


@dataclass(frozen=True)
class Continue:
    pass


@dataclass(frozen=True)
class ExprStmt:
    expr: object


# -- definitions ----------------------------------------------------------------

@dataclass(frozen=True)
class Param:
    type: str
    name: str
    is_pointer: bool = False
    const: bool = False


@dataclass(frozen=True)
class KernelDef:
    name: str
    params: tuple[Param, ...]
    body: Block
    qualifiers: tuple[str, ...] = field(default=())
