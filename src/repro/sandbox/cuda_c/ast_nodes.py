"""AST node definitions for the CUDA-C subset.

Statement nodes (and :class:`KernelDef`) carry the 1-based source ``line``
they started on so downstream passes — in particular the static hazard
analyzer in :mod:`repro.sandbox.cuda_c.static` — can attach source spans to
their findings.  ``line`` is excluded from equality and hashing: two parses
of the same kernel text are interchangeable as cache keys regardless of
where the text sat in the enclosing file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Param", "KernelDef", "Block",
    "Decl", "Assign", "If", "For", "While", "Return", "ExprStmt", "Break", "Continue",
    "Num", "Var", "Index", "Member", "Unary", "Binary", "Ternary", "Call",
]


# -- expressions -------------------------------------------------------------

@dataclass(frozen=True)
class Num:
    value: float | int


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class Index:
    base: "Var | Index"
    index: object


@dataclass(frozen=True)
class Member:
    base: str
    field: str


@dataclass(frozen=True)
class Unary:
    op: str
    operand: object


@dataclass(frozen=True)
class Binary:
    op: str
    left: object
    right: object


@dataclass(frozen=True)
class Ternary:
    cond: object
    then: object
    orelse: object


@dataclass(frozen=True)
class Call:
    name: str
    args: tuple = ()


# -- statements ---------------------------------------------------------------

@dataclass(frozen=True)
class Block:
    statements: tuple = ()
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Decl:
    type: str
    name: str
    init: object | None = None
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Assign:
    target: object      # Var or Index
    op: str             # "=", "+=", "-=", "*=", "/="
    value: object
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class If:
    cond: object
    then: Block
    orelse: Block | None = None
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class For:
    init: object | None
    cond: object | None
    update: object | None
    body: Block
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class While:
    cond: object
    body: Block
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Return:
    value: object | None = None
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Break:
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Continue:
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class ExprStmt:
    expr: object
    line: int = field(default=0, compare=False)


# -- definitions ----------------------------------------------------------------

@dataclass(frozen=True)
class Param:
    type: str
    name: str
    is_pointer: bool = False
    const: bool = False


@dataclass(frozen=True)
class KernelDef:
    name: str
    params: tuple[Param, ...]
    body: Block
    qualifiers: tuple[str, ...] = field(default=())
    line: int = field(default=0, compare=False)
