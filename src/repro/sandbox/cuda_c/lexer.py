"""Tokenizer for the CUDA-C subset."""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Token", "tokenize", "CudaLexError"]


class CudaLexError(ValueError):
    """Raised when the source contains characters the subset does not allow."""


@dataclass(frozen=True)
class Token:
    kind: str      # "ident", "number", "op", "keyword", "string"
    text: str
    line: int


KEYWORDS = {
    "if", "else", "for", "while", "return", "const", "void",
    "int", "float", "double", "unsigned", "long", "size_t", "bool",
    "__global__", "__device__", "__host__", "__shared__", "__restrict__",
    "extern", "static", "struct",
}

#: Multi-character operators, longest first so the tokenizer is greedy.
_OPERATORS = (
    "<<<", ">>>", "<<=", ">>=",
    "&&", "||", "==", "!=", "<=", ">=", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "<<", ">>",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~", "?", ":",
    "(", ")", "{", "}", "[", "]", ",", ";", ".",
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<number>(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?[fFuUlL]*)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<op>""" + "|".join(re.escape(op) for op in _OPERATORS) + r""")
    """,
    re.VERBOSE | re.DOTALL,
)


def tokenize(source: str) -> list[Token]:
    """Tokenize CUDA-C source into a flat token list (comments stripped)."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    n = len(source)
    while pos < n:
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            snippet = source[pos:pos + 20].splitlines()[0]
            raise CudaLexError(f"unexpected character at line {line}: {snippet!r}")
        text = match.group(0)
        line += text.count("\n")
        pos = match.end()
        if match.lastgroup in ("ws", "comment"):
            continue
        if match.lastgroup == "ident":
            kind = "keyword" if text in KEYWORDS else "ident"
        elif match.lastgroup == "number":
            kind = "number"
        elif match.lastgroup == "string":
            kind = "string"
        else:
            kind = "op"
        tokens.append(Token(kind=kind, text=text, line=line))
    return tokens
