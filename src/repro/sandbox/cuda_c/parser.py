"""Recursive-descent parser for the CUDA-C subset."""

from __future__ import annotations

from repro.sandbox.cuda_c import ast_nodes as ast
from repro.sandbox.cuda_c.lexer import Token, tokenize

__all__ = ["CudaSyntaxError", "parse_cuda_source"]

_TYPE_KEYWORDS = {"void", "int", "float", "double", "unsigned", "long", "size_t", "bool"}
_QUALIFIERS = {"__global__", "__device__", "__host__", "static", "extern", "__shared__", "const",
               "__restrict__"}


class CudaSyntaxError(SyntaxError):
    """Raised when the source uses constructs outside the supported subset."""


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------------
    def peek(self, offset: int = 0) -> Token | None:
        idx = self.pos + offset
        return self.tokens[idx] if idx < len(self.tokens) else None

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            raise CudaSyntaxError("unexpected end of source")
        self.pos += 1
        return token

    def check(self, text: str) -> bool:
        token = self.peek()
        return token is not None and token.text == text

    def match(self, text: str) -> bool:
        if self.check(text):
            self.pos += 1
            return True
        return False

    def expect(self, text: str) -> Token:
        token = self.peek()
        if token is None or token.text != text:
            found = token.text if token else "<eof>"
            line = token.line if token else -1
            raise CudaSyntaxError(f"expected {text!r} but found {found!r} (line {line})")
        return self.advance()

    def line(self) -> int:
        """Source line of the next token (0 at end of input)."""
        token = self.peek()
        return token.line if token is not None else 0

    # -- top level -----------------------------------------------------------
    def parse_module(self) -> dict[str, ast.KernelDef]:
        kernels: dict[str, ast.KernelDef] = {}
        while not self.at_end():
            # Skip `extern "C"` linkage wrappers.
            if self.check("extern"):
                self.advance()
                if self.peek() is not None and self.peek().kind == "string":
                    self.advance()
                if self.match("{"):
                    continue
                continue
            if self.check("}"):
                self.advance()
                continue
            kernel = self.parse_function()
            kernels[kernel.name] = kernel
        return kernels

    def parse_function(self) -> ast.KernelDef:
        line = self.line()
        qualifiers: list[str] = []
        while self.peek() is not None and self.peek().text in _QUALIFIERS:
            qualifiers.append(self.advance().text)
        # Return type (possibly multi-word, e.g. `unsigned int`).
        if self.peek() is None or self.peek().text not in _TYPE_KEYWORDS:
            found = self.peek().text if self.peek() else "<eof>"
            raise CudaSyntaxError(f"expected a return type, found {found!r}")
        while self.peek() is not None and self.peek().text in _TYPE_KEYWORDS:
            self.advance()
        while self.match("*"):
            pass
        name_token = self.advance()
        if name_token.kind != "ident":
            raise CudaSyntaxError(f"expected function name, found {name_token.text!r}")
        self.expect("(")
        params = self.parse_params()
        body = self.parse_block()
        return ast.KernelDef(
            name=name_token.text, params=tuple(params), body=body,
            qualifiers=tuple(qualifiers), line=line,
        )

    def parse_params(self) -> list[ast.Param]:
        params: list[ast.Param] = []
        if self.match(")"):
            return params
        while True:
            const = False
            ptype_parts: list[str] = []
            while self.peek() is not None and (
                self.peek().text in _TYPE_KEYWORDS or self.peek().text in _QUALIFIERS
            ):
                text = self.advance().text
                if text == "const":
                    const = True
                elif text in _TYPE_KEYWORDS:
                    ptype_parts.append(text)
            is_pointer = False
            while self.match("*"):
                is_pointer = True
            if self.match("__restrict__"):
                pass
            name_token = self.advance()
            if name_token.kind != "ident":
                raise CudaSyntaxError(f"expected parameter name, found {name_token.text!r}")
            params.append(
                ast.Param(
                    type=" ".join(ptype_parts) or "double",
                    name=name_token.text,
                    is_pointer=is_pointer,
                    const=const,
                )
            )
            if self.match(")"):
                break
            self.expect(",")
        return params

    # -- statements -----------------------------------------------------------
    def parse_block(self) -> ast.Block:
        line = self.line()
        self.expect("{")
        statements: list[object] = []
        while not self.check("}"):
            if self.at_end():
                raise CudaSyntaxError("unterminated block")
            statements.append(self.parse_statement())
        self.expect("}")
        return ast.Block(statements=tuple(statements), line=line)

    def parse_statement(self) -> object:
        token = self.peek()
        if token is None:
            raise CudaSyntaxError("unexpected end of source in statement")
        if token.text == "{":
            return self.parse_block()
        if token.text == ";":
            self.advance()
            return ast.Block()
        if token.text == "if":
            return self.parse_if()
        if token.text == "for":
            return self.parse_for()
        if token.text == "while":
            return self.parse_while()
        if token.text == "return":
            self.advance()
            value = None if self.check(";") else self.parse_expression()
            self.expect(";")
            return ast.Return(value=value, line=token.line)
        if token.text == "break":
            self.advance()
            self.expect(";")
            return ast.Break(line=token.line)
        if token.text == "continue":
            self.advance()
            self.expect(";")
            return ast.Continue(line=token.line)
        if token.text in _TYPE_KEYWORDS or token.text in _QUALIFIERS:
            stmt = self.parse_declaration()
            self.expect(";")
            return stmt
        stmt = self.parse_simple_statement()
        self.expect(";")
        return stmt

    def parse_declaration(self) -> ast.Decl:
        line = self.line()
        while self.peek() is not None and self.peek().text in _QUALIFIERS:
            self.advance()
        type_parts: list[str] = []
        while self.peek() is not None and self.peek().text in _TYPE_KEYWORDS:
            type_parts.append(self.advance().text)
        while self.match("*"):
            pass
        name_token = self.advance()
        if name_token.kind != "ident":
            raise CudaSyntaxError(f"expected variable name, found {name_token.text!r}")
        init = None
        if self.match("["):
            # Fixed-size local array (e.g. shared-memory tile); initialised to zeros.
            size_expr = self.parse_expression()
            self.expect("]")
            init = ast.Call(name="__local_array__", args=(size_expr,))
        if self.match("="):
            init = self.parse_expression()
        return ast.Decl(type=" ".join(type_parts) or "double", name=name_token.text,
                        init=init, line=line)

    def parse_simple_statement(self) -> object:
        """Assignment, increment or expression statement (without the ';')."""
        start = self.pos
        line = self.line()
        expr = self.parse_expression()
        token = self.peek()
        if token is not None and token.text in ("=", "+=", "-=", "*=", "/=", "%="):
            op = self.advance().text
            value = self.parse_expression()
            if not isinstance(expr, (ast.Var, ast.Index, ast.Member)):
                raise CudaSyntaxError("invalid assignment target")
            return ast.Assign(target=expr, op=op, value=value, line=line)
        if token is not None and token.text in ("++", "--"):
            op = self.advance().text
            if not isinstance(expr, (ast.Var, ast.Index)):
                raise CudaSyntaxError("invalid increment target")
            return ast.Assign(target=expr, op="+=" if op == "++" else "-=",
                              value=ast.Num(1), line=line)
        # Pre-increment handled in parse_expression via Unary; plain calls
        # (e.g. __syncthreads()) become expression statements.
        del start
        return ast.ExprStmt(expr=expr, line=line)

    def parse_if(self) -> ast.If:
        line = self.line()
        self.expect("if")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        then = self._statement_as_block()
        orelse = None
        if self.match("else"):
            orelse = self._statement_as_block()
        return ast.If(cond=cond, then=then, orelse=orelse, line=line)

    def parse_for(self) -> ast.For:
        line = self.line()
        self.expect("for")
        self.expect("(")
        init: object | None = None
        if not self.check(";"):
            if self.peek().text in _TYPE_KEYWORDS or self.peek().text in _QUALIFIERS:
                init = self.parse_declaration()
            else:
                init = self.parse_simple_statement()
        self.expect(";")
        cond = None if self.check(";") else self.parse_expression()
        self.expect(";")
        update = None if self.check(")") else self.parse_simple_statement()
        self.expect(")")
        body = self._statement_as_block()
        return ast.For(init=init, cond=cond, update=update, body=body, line=line)

    def parse_while(self) -> ast.While:
        line = self.line()
        self.expect("while")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        body = self._statement_as_block()
        return ast.While(cond=cond, body=body, line=line)

    def _statement_as_block(self) -> ast.Block:
        stmt = self.parse_statement()
        if isinstance(stmt, ast.Block):
            return stmt
        return ast.Block(statements=(stmt,))

    # -- expressions -----------------------------------------------------------
    def parse_expression(self) -> object:
        return self.parse_conditional()

    def parse_conditional(self) -> object:
        """C conditional expression: ``cond ? expr : conditional`` (right
        associative; the middle operand is a full expression)."""
        cond = self.parse_logical_or()
        if not self.match("?"):
            return cond
        then = self.parse_expression()
        self.expect(":")
        orelse = self.parse_conditional()
        return ast.Ternary(cond=cond, then=then, orelse=orelse)

    def parse_logical_or(self) -> object:
        expr = self.parse_logical_and()
        while self.check("||"):
            self.advance()
            expr = ast.Binary(op="||", left=expr, right=self.parse_logical_and())
        return expr

    def parse_logical_and(self) -> object:
        expr = self.parse_equality()
        while self.check("&&"):
            self.advance()
            expr = ast.Binary(op="&&", left=expr, right=self.parse_equality())
        return expr

    def parse_equality(self) -> object:
        expr = self.parse_relational()
        while self.peek() is not None and self.peek().text in ("==", "!="):
            op = self.advance().text
            expr = ast.Binary(op=op, left=expr, right=self.parse_relational())
        return expr

    def parse_relational(self) -> object:
        expr = self.parse_additive()
        while self.peek() is not None and self.peek().text in ("<", ">", "<=", ">="):
            op = self.advance().text
            expr = ast.Binary(op=op, left=expr, right=self.parse_additive())
        return expr

    def parse_additive(self) -> object:
        expr = self.parse_multiplicative()
        while self.peek() is not None and self.peek().text in ("+", "-"):
            op = self.advance().text
            expr = ast.Binary(op=op, left=expr, right=self.parse_multiplicative())
        return expr

    def parse_multiplicative(self) -> object:
        expr = self.parse_unary()
        while self.peek() is not None and self.peek().text in ("*", "/", "%"):
            op = self.advance().text
            expr = ast.Binary(op=op, left=expr, right=self.parse_unary())
        return expr

    def parse_unary(self) -> object:
        token = self.peek()
        if token is not None and token.text in ("-", "+", "!", "&"):
            op = self.advance().text
            return ast.Unary(op=op, operand=self.parse_unary())
        if token is not None and token.text in ("++", "--"):
            op = self.advance().text
            target = self.parse_unary()
            return ast.Unary(op="pre" + op, operand=target)
        return self.parse_postfix()

    def parse_postfix(self) -> object:
        expr = self.parse_primary()
        while True:
            if self.check("["):
                self.advance()
                index = self.parse_expression()
                self.expect("]")
                expr = ast.Index(base=expr, index=index)
            elif self.check(".") and isinstance(expr, ast.Var):
                self.advance()
                field_token = self.advance()
                expr = ast.Member(base=expr.name, field=field_token.text)
            else:
                break
        return expr

    def parse_primary(self) -> object:
        token = self.advance()
        if token.kind == "number":
            text = token.text.rstrip("fFuUlL")
            if any(ch in text for ch in ".eE"):
                return ast.Num(float(text))
            return ast.Num(int(text))
        if token.text == "(":
            # Either a parenthesised expression or a C-style cast like
            # `(size_t)n`; a cast is recognised by a lone type keyword.
            if (
                self.peek() is not None
                and self.peek().text in _TYPE_KEYWORDS
                and self.peek(1) is not None
                and self.peek(1).text == ")"
            ):
                self.advance()
                self.expect(")")
                return self.parse_unary()
            expr = self.parse_expression()
            self.expect(")")
            return expr
        if token.kind in ("ident", "keyword"):
            name = token.text
            if self.check("("):
                self.advance()
                args: list[object] = []
                if not self.check(")"):
                    args.append(self.parse_expression())
                    while self.match(","):
                        args.append(self.parse_expression())
                self.expect(")")
                return ast.Call(name=name, args=tuple(args))
            return ast.Var(name=name)
        raise CudaSyntaxError(f"unexpected token {token.text!r} (line {token.line})")


def parse_cuda_source(source: str) -> dict[str, ast.KernelDef]:
    """Parse CUDA-C source and return its function definitions by name."""
    tokens = tokenize(source)
    return _Parser(tokens).parse_module()
