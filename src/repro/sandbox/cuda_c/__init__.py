"""Miniature CUDA-C kernel interpreter.

Parses the subset of CUDA C that numerical kernels of the AXPY/GEMV/GEMM/
SpMV/Jacobi/CG family use — ``__global__`` functions with scalar and pointer
parameters, declarations, assignments, ``for``/``while``/``if`` statements
and arithmetic expressions over ``threadIdx``/``blockIdx``/``blockDim``/
``gridDim`` — and executes them over a simulated grid of thread blocks with
device buffers backed by numpy arrays.

This is the substrate that lets the sandbox run pyCUDA ``SourceModule`` and
cuPy ``RawKernel`` suggestions without a GPU.
"""

from __future__ import annotations

from repro.sandbox.cuda_c.interpreter import CudaKernel, CudaModule, execution_mode
from repro.sandbox.cuda_c.lockstep import (
    lockstep_stats,
    reset_lockstep_stats,
    static_elision,
    static_elision_enabled,
)
from repro.sandbox.cuda_c.parser import parse_cuda_source, CudaSyntaxError

__all__ = [
    "CudaKernel",
    "CudaModule",
    "parse_cuda_source",
    "CudaSyntaxError",
    "execution_mode",
    "lockstep_stats",
    "reset_lockstep_stats",
    "static_elision",
    "static_elision_enabled",
]
