"""Evaluator for the CUDA-C subset: runs a kernel over a simulated grid.

The device model is intentionally simple but faithful for data-parallel
kernels without cross-thread communication: every (block, thread) pair
executes the kernel body sequentially with its own local environment; pointer
parameters are numpy arrays shared by all threads (so writes are globally
visible, matching global memory semantics).

Launches run on one of two engines:

* the **scalar sweep** below — the original tree-walking evaluator, one
  thread at a time; it is the reference semantics for every observable
  effect, and
* the **lockstep engine** (:mod:`repro.sandbox.cuda_c.lockstep`) — each
  kernel is compiled once at parse time into closures that evaluate every
  statement for all threads at once over numpy lane arrays, with an
  active-thread mask for divergent branches.  Kernels the compiler cannot
  prove safe stay scalar-only, and a compiled launch that trips a runtime
  hazard (cross-lane reads of written data, duplicate scatter targets, int64
  overflow, out-of-bounds, math-domain errors, budget exhaustion) restores
  the pre-launch buffers and **replays through the scalar sweep**, so both
  engines are byte-identical by construction.

:func:`execution_mode` forces the scalar path (differential tests,
benchmarks); :func:`repro.sandbox.cuda_c.lockstep.lockstep_stats` counts
which path launches actually took.
"""

from __future__ import annotations

import contextlib
import contextvars
import math
import os
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

import numpy as np

from repro.sandbox.cuda_c import ast_nodes as ast
from repro.sandbox.cuda_c import lockstep as _lockstep
from repro.sandbox.cuda_c import static as _static
from repro.sandbox.cuda_c.parser import parse_cuda_source

__all__ = [
    "Dim3",
    "CudaKernel",
    "CudaModule",
    "CudaRuntimeError",
    "shared_parse_scope",
    "execution_mode",
]

#: Active source -> parsed-kernels map of a :func:`shared_parse_scope`, or
#: ``None`` outside any scope (every CudaModule then parses its own source).
#: Context-local, so concurrent sandbox contexts under the thread backend
#: each see their own scope and cannot corrupt each other's restore.
_PARSE_SCOPE: contextvars.ContextVar[dict[str, dict[str, "CudaKernel"]] | None] = (
    contextvars.ContextVar("cuda_parse_scope", default=None)
)

#: Active launch memo of the scope: (kernel, grid, block, argument
#: fingerprint) -> post-launch buffer states.  ``None`` outside any scope.
_LAUNCH_SCOPE: contextvars.ContextVar[dict | None] = contextvars.ContextVar(
    "cuda_launch_scope", default=None
)


@contextlib.contextmanager
def shared_parse_scope() -> Iterator[None]:
    """Reuse parse and launch work for identical CUDA kernels within the scope.

    The batched executor opens one scope per suggestion batch (the
    single-suggestion path runs without a scope and pays no fingerprinting
    overhead).  Near-duplicate suggestions in a batch frequently embed
    byte-identical ``RawKernel`` / ``SourceModule`` sources, so within one
    scope:

    * identical sources are parsed once (sharing is safe because parsing is
      pure and :class:`CudaKernel` keeps no launch state), and
    * identical *launches* — same kernel, same grid/block, byte-identical
      arguments — are interpreted once and replayed from the recorded
      post-launch buffer states (the interpreter is deterministic and a
      launch's only effect is mutating its array arguments).

    Scopes nest (the inner scope wins) and always restore the previous
    scope on exit; the state is context-local, so concurrent scopes on
    different threads are independent.
    """
    parse_token = _PARSE_SCOPE.set({})
    launch_token = _LAUNCH_SCOPE.set({})
    try:
        yield
    finally:
        _PARSE_SCOPE.reset(parse_token)
        _LAUNCH_SCOPE.reset(launch_token)


#: Active execution mode: "auto" (lockstep where compiled, scalar otherwise)
#: or "scalar" (force the reference sweep).  Context-local so concurrent
#: sandbox contexts under the thread backend are independent; the process
#: default honours ``$REPRO_CUDA_EXECUTION`` for CLI-level control.
_EXECUTION_MODE: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "cuda_execution_mode", default=None
)


def _current_mode() -> str:
    mode = _EXECUTION_MODE.get()
    if mode is not None:
        return mode
    env = os.environ.get("REPRO_CUDA_EXECUTION", "auto")
    if env not in ("auto", "scalar"):
        # Fail loud: a typo would otherwise silently force the slow engine.
        raise CudaRuntimeError(
            f"invalid REPRO_CUDA_EXECUTION={env!r}; use 'auto' or 'scalar'"
        )
    return env


@contextlib.contextmanager
def execution_mode(mode: str) -> Iterator[None]:
    """Select the launch engine within the context: "auto" or "scalar".

    "scalar" forces every launch through the reference sweep — the
    differential-testing suite and the paired interpreter benchmark compare
    it against the default "auto" (lockstep with scalar fallback) mode.
    """
    if mode not in ("auto", "scalar"):
        raise ValueError(f"unknown execution mode {mode!r}; use 'auto' or 'scalar'")
    token = _EXECUTION_MODE.set(mode)
    try:
        yield
    finally:
        _EXECUTION_MODE.reset(token)


class CudaRuntimeError(RuntimeError):
    """Raised for out-of-bounds accesses, unknown names or unsupported calls."""


@dataclass(frozen=True)
class Dim3:
    """A CUDA dim3 (grid or block shape)."""

    x: int = 1
    y: int = 1
    z: int = 1

    @classmethod
    def from_value(cls, value: Any) -> "Dim3":
        if isinstance(value, Dim3):
            return value
        if isinstance(value, int):
            return cls(x=value)
        seq = tuple(int(v) for v in value)
        if len(seq) == 1:
            return cls(x=seq[0])
        if len(seq) == 2:
            return cls(x=seq[0], y=seq[1])
        if len(seq) == 3:
            return cls(x=seq[0], y=seq[1], z=seq[2])
        raise ValueError(f"cannot interpret {value!r} as dim3")

    @property
    def total(self) -> int:
        return self.x * self.y * self.z


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    pass


_MATH_FUNCTIONS = {
    "sqrt": math.sqrt,
    "sqrtf": math.sqrt,
    "fabs": abs,
    "abs": abs,
    "fabsf": abs,
    "min": min,
    "max": max,
    "fmin": min,
    "fmax": max,
    "exp": math.exp,
    "pow": math.pow,
}


class CudaKernel:
    """A single ``__global__`` kernel ready to launch."""

    #: Safety valve against runaway interpreted loops.
    max_thread_steps = 2_000_000

    def __init__(self, definition: ast.KernelDef):
        self.definition = definition
        self.name = definition.name
        #: Lockstep program compiled once at parse time, or ``None`` when the
        #: kernel uses constructs the vectorized engine does not model (it
        #: then always takes the scalar sweep).
        self.lockstep = _lockstep.try_compile(definition)

    @property
    def static_report(self):
        """Compile-time :class:`~repro.sandbox.cuda_c.static.StaticReport`.

        Computed symbolically (no launch geometry), so out-of-bounds
        verdicts stay UNKNOWN; re-run :func:`analyze_kernel` with geometry
        and buffer sizes for launch-specific verdicts.  ``None`` for
        scalar-only kernels or when the analysis errored out.
        """
        program = self.lockstep
        if program is not None:
            return program.static_report
        try:
            return _static.analyze_kernel(self.definition)
        except Exception:
            return None

    # -- launching ----------------------------------------------------------
    def launch(self, grid: Any, block: Any, args: tuple) -> None:
        """Execute the kernel over ``grid`` x ``block`` threads."""
        grid3 = Dim3.from_value(grid)
        block3 = Dim3.from_value(block)
        params = self.definition.params
        if len(args) != len(params):
            raise CudaRuntimeError(
                f"kernel {self.name!r} expects {len(params)} arguments, got {len(args)}"
            )
        bound: dict[str, Any] = {}
        for param, arg in zip(params, args):
            bound[param.name] = self._coerce_argument(param, arg)

        memo = _LAUNCH_SCOPE.get()
        memo_key = self._launch_key(grid3, block3, bound) if memo is not None else None
        if memo_key is not None:
            cached = memo.get(memo_key)
            if cached is not None:
                # Identical deterministic launch already interpreted in this
                # scope: replay its post-launch buffer states.
                for name, stored in cached:
                    np.copyto(bound[name], stored)
                return

        self._execute(grid3, block3, bound)

        if memo_key is not None:
            memo[memo_key] = [
                (name, value.copy())
                for name, value in bound.items()
                if isinstance(value, np.ndarray)
            ]

    def _launch_key(self, grid3: "Dim3", block3: "Dim3", bound: dict) -> tuple | None:
        """Hashable fingerprint of a launch, or None when not memoizable.

        Keyed on the kernel *object* (within a parse scope identical sources
        share one :class:`CudaKernel`, so identity equals source identity),
        the launch geometry and the byte-exact argument values.  Failed
        launches are never recorded, so an error always re-executes.
        Launches whose array arguments alias each other are not memoized:
        equal bytes cannot distinguish aliased from merely-equal buffers,
        and aliasing changes what the interpreted kernel computes.
        """
        parts: list = [self, (grid3.x, grid3.y, grid3.z), (block3.x, block3.y, block3.z)]
        arrays: list[np.ndarray] = []
        for name, value in bound.items():
            if isinstance(value, np.ndarray):
                if not value.flags.writeable:
                    # Replay copies post-launch state into every buffer; a
                    # read-only input would make the replay raise where the
                    # real launch succeeded.  Don't memoize such launches.
                    return None
                arrays.append(value)
                parts.append((name, value.shape, value.dtype.str, value.tobytes()))
            elif isinstance(value, (int, float, complex, bool, np.generic)):
                parts.append((name, type(value).__name__, _scalar_token(value)))
            else:  # pragma: no cover - exotic argument, skip memoization
                return None
        for i in range(len(arrays)):
            for j in range(i + 1, len(arrays)):
                if np.shares_memory(arrays[i], arrays[j]):
                    return None
        return tuple(parts)

    @staticmethod
    def _coerce_argument(param: ast.Param, arg: Any) -> Any:
        if param.is_pointer:
            if not isinstance(arg, np.ndarray):
                arg = np.asarray(arg)
            flat = arg.reshape(-1) if arg.ndim > 1 else arg
            return flat
        if isinstance(arg, np.generic):
            arg = arg.item()
        if param.type.startswith("int") or param.type in ("unsigned", "long", "size_t"):
            return int(arg)
        return float(arg)

    # -- execution ------------------------------------------------------------
    def _execute(self, grid3: "Dim3", block3: "Dim3", bound: dict[str, Any]) -> None:
        """Run one launch: lockstep when compiled and allowed, scalar
        otherwise — with a transparent scalar replay on lockstep hazards."""
        program = self.lockstep
        mode = _current_mode()
        if program is not None and mode == "auto":
            try:
                program.run(grid3, block3, bound, self.max_thread_steps)
                _lockstep._note("launches_lockstep")
                return
            except _lockstep.LockstepHazard as hazard:
                # Buffers were restored before the raise; the scalar sweep
                # below re-executes from the exact pre-launch state and is
                # authoritative for results *and* errors.
                _lockstep._note("launches_scalar_fallback")
                _lockstep._note(f"fallback[{hazard.reason}]")
        elif program is None:
            # Compile-rejected kernel: distinct from a *requested* scalar
            # mode, so coverage diagnostics can tell the two apart.
            _lockstep._note("launches_scalar_only")
        else:
            _lockstep._note("launches_scalar_forced")
        self._execute_scalar(grid3, block3, bound)

    def _execute_scalar(self, grid3: "Dim3", block3: "Dim3", bound: dict[str, Any]) -> None:
        """The reference semantics: sweep every thread sequentially."""
        builtins = {
            "gridDim": Dim3(grid3.x, grid3.y, grid3.z),
            "blockDim": Dim3(block3.x, block3.y, block3.z),
        }
        for bz in range(grid3.z):
            for by in range(grid3.y):
                for bx in range(grid3.x):
                    for tz in range(block3.z):
                        for ty in range(block3.y):
                            for tx in range(block3.x):
                                env = dict(bound)
                                thread_builtins = dict(builtins)
                                thread_builtins["blockIdx"] = Dim3(bx, by, bz)
                                thread_builtins["threadIdx"] = Dim3(tx, ty, tz)
                                self._run_thread(env, thread_builtins)

    def _run_thread(self, env: dict[str, Any], builtins: Mapping[str, Dim3]) -> None:
        state = _ThreadState(env=env, builtins=builtins, budget=self.max_thread_steps)
        try:
            self._exec_block(self.definition.body, state)
        except _ReturnSignal:
            pass

    def _exec_block(self, block: ast.Block, state: "_ThreadState") -> None:
        for stmt in block.statements:
            self._exec_stmt(stmt, state)

    def _exec_stmt(self, stmt: object, state: "_ThreadState") -> None:
        state.step()
        if isinstance(stmt, ast.Block):
            self._exec_block(stmt, state)
        elif isinstance(stmt, ast.Decl):
            value = self._eval(stmt.init, state) if stmt.init is not None else 0
            if stmt.type.startswith("int") or stmt.type in ("unsigned", "long", "size_t"):
                if not isinstance(value, np.ndarray):
                    value = int(value)
            state.env[stmt.name] = value
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt, state)
        elif isinstance(stmt, ast.If):
            if self._truthy(self._eval(stmt.cond, state)):
                self._exec_block(stmt.then, state)
            elif stmt.orelse is not None:
                self._exec_block(stmt.orelse, state)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._exec_stmt(stmt.init, state)
            while stmt.cond is None or self._truthy(self._eval(stmt.cond, state)):
                state.step()
                try:
                    self._exec_block(stmt.body, state)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if stmt.update is not None:
                    self._exec_stmt(stmt.update, state)
        elif isinstance(stmt, ast.While):
            while self._truthy(self._eval(stmt.cond, state)):
                state.step()
                try:
                    self._exec_block(stmt.body, state)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(stmt, ast.Return):
            raise _ReturnSignal()
        elif isinstance(stmt, ast.Break):
            raise _BreakSignal()
        elif isinstance(stmt, ast.Continue):
            raise _ContinueSignal()
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, state)
        else:  # pragma: no cover - parser produces only the above
            raise CudaRuntimeError(f"unsupported statement {stmt!r}")

    def _assign(self, stmt: ast.Assign, state: "_ThreadState") -> None:
        value = self._eval(stmt.value, state)
        target = stmt.target
        if isinstance(target, ast.Var):
            current = state.env.get(target.name, 0)
            state.env[target.name] = self._apply_op(stmt.op, current, value)
        elif isinstance(target, ast.Index):
            array, index = self._resolve_index(target, state)
            current = array[index]
            array[index] = self._apply_op(stmt.op, current, value)
        else:
            raise CudaRuntimeError(f"cannot assign to {target!r}")

    @staticmethod
    def _apply_op(op: str, current: Any, value: Any) -> Any:
        if op == "=":
            return value
        if op == "+=":
            return current + value
        if op == "-=":
            return current - value
        if op == "*=":
            return current * value
        if op == "/=":
            return current / value
        if op == "%=":
            return current % value
        raise CudaRuntimeError(f"unsupported assignment operator {op!r}")

    def _resolve_index(self, node: ast.Index, state: "_ThreadState") -> tuple[np.ndarray, int]:
        base = node.base
        if not isinstance(base, ast.Var):
            raise CudaRuntimeError("only one-dimensional pointer indexing is supported")
        array = state.env.get(base.name)
        if not isinstance(array, np.ndarray):
            raise CudaRuntimeError(f"{base.name!r} is not a device buffer")
        index = int(self._eval(node.index, state))
        if index < 0 or index >= array.size:
            raise CudaRuntimeError(
                f"out-of-bounds access: {base.name}[{index}] (size {array.size})"
            )
        return array, index

    # -- expression evaluation ---------------------------------------------------
    def _eval(self, node: object, state: "_ThreadState") -> Any:
        state.step()
        if isinstance(node, ast.Num):
            return node.value
        if isinstance(node, ast.Var):
            if node.name in state.env:
                return state.env[node.name]
            if node.name in state.builtins:
                return state.builtins[node.name]
            raise CudaRuntimeError(f"unknown identifier {node.name!r}")
        if isinstance(node, ast.Member):
            base = state.builtins.get(node.base) or state.env.get(node.base)
            if base is None:
                raise CudaRuntimeError(f"unknown identifier {node.base!r}")
            try:
                return getattr(base, node.field)
            except AttributeError:
                raise CudaRuntimeError(f"{node.base!r} has no member {node.field!r}") from None
        if isinstance(node, ast.Index):
            array, index = self._resolve_index(node, state)
            value = array[index]
            if isinstance(value, np.generic):
                return value.item()
            return value
        if isinstance(node, ast.Unary):
            if node.op in ("pre++", "pre--"):
                operand = node.operand
                if not isinstance(operand, ast.Var):
                    raise CudaRuntimeError("unsupported pre-increment target")
                delta = 1 if node.op == "pre++" else -1
                state.env[operand.name] = state.env.get(operand.name, 0) + delta
                return state.env[operand.name]
            value = self._eval(node.operand, state)
            if node.op == "-":
                return -value
            if node.op == "+":
                return value
            if node.op == "!":
                return 0 if self._truthy(value) else 1
        if isinstance(node, ast.Binary):
            return self._eval_binary(node, state)
        if isinstance(node, ast.Ternary):
            # Only the taken branch evaluates (C semantics: the other branch's
            # side effects and errors never happen).
            if self._truthy(self._eval(node.cond, state)):
                return self._eval(node.then, state)
            return self._eval(node.orelse, state)
        if isinstance(node, ast.Call):
            return self._eval_call(node, state)
        raise CudaRuntimeError(f"unsupported expression {node!r}")

    def _eval_binary(self, node: ast.Binary, state: "_ThreadState") -> Any:
        if node.op == "&&":
            return 1 if (self._truthy(self._eval(node.left, state))
                         and self._truthy(self._eval(node.right, state))) else 0
        if node.op == "||":
            return 1 if (self._truthy(self._eval(node.left, state))
                         or self._truthy(self._eval(node.right, state))) else 0
        left = self._eval(node.left, state)
        right = self._eval(node.right, state)
        op = node.op
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                if right == 0:
                    raise CudaRuntimeError("integer division by zero")
                return left // right
            return left / right
        if op == "%":
            return left % right
        if op == "<":
            return 1 if left < right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">=":
            return 1 if left >= right else 0
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        raise CudaRuntimeError(f"unsupported operator {op!r}")

    def _eval_call(self, node: ast.Call, state: "_ThreadState") -> Any:
        name = node.name
        if name == "__syncthreads":
            return 0
        if name == "atomicAdd":
            if len(node.args) != 2:
                raise CudaRuntimeError("atomicAdd expects two arguments")
            target = node.args[0]
            # Accept &x[i] style (parsed as Unary), a direct element index, or
            # a bare pointer (which addresses element 0, the common scalar
            # accumulator idiom `atomicAdd(result, value)`).
            if isinstance(target, ast.Unary):
                target = target.operand
            value = self._eval(node.args[1], state)
            if isinstance(target, ast.Index):
                array, index = self._resolve_index(target, state)
            elif isinstance(target, ast.Var):
                array = state.env.get(target.name)
                if not isinstance(array, np.ndarray):
                    raise CudaRuntimeError("atomicAdd target must be a device buffer")
                index = 0
            else:
                raise CudaRuntimeError("atomicAdd target must be an array element or pointer")
            array[index] += value
            return array[index]
        if name == "__local_array__":
            size = int(self._eval(node.args[0], state))
            return np.zeros(size, dtype=np.float64)
        if name in _MATH_FUNCTIONS:
            args = [self._eval(arg, state) for arg in node.args]
            return _MATH_FUNCTIONS[name](*args)
        raise CudaRuntimeError(f"call to undefined function {name!r}")

    @staticmethod
    def _truthy(value: Any) -> bool:
        return bool(value)


def _scalar_token(value: Any) -> Any:
    """Equality token for a scalar launch argument.

    Floats are keyed by their hex bit pattern, not value equality: 0.0 and
    -0.0 compare equal but can steer a sign-sensitive kernel differently,
    so they must not share a launch-memo entry.
    """
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (complex, np.complexfloating)):
        return (float(value.real).hex(), float(value.imag).hex())
    if isinstance(value, (float, np.floating)):
        return float(value).hex()
    if isinstance(value, (int, np.integer)):
        return int(value)
    return value  # pragma: no cover - remaining np.generic kinds


@dataclass
class _ThreadState:
    env: dict[str, Any]
    builtins: Mapping[str, Dim3]
    budget: int

    def step(self) -> None:
        self.budget -= 1
        if self.budget <= 0:
            raise CudaRuntimeError("kernel exceeded the interpreter step budget")


class CudaModule:
    """A parsed CUDA-C translation unit (the fake ``SourceModule``)."""

    def __init__(self, source: str):
        self.source = source
        scope = _PARSE_SCOPE.get()
        if scope is not None and source in scope:
            self.kernels = scope[source]
            return
        self.kernels = {name: CudaKernel(defn) for name, defn in parse_cuda_source(source).items()}
        if scope is not None:
            scope[source] = self.kernels

    def get_kernel(self, name: str) -> CudaKernel:
        if name not in self.kernels:
            raise KeyError(
                f"module defines no kernel {name!r}; available: {', '.join(self.kernels) or 'none'}"
            )
        return self.kernels[name]
