"""Static hazard analysis for the CUDA-C subset.

An abstract-interpretation pass over the parsed kernel AST
(:mod:`repro.sandbox.cuda_c.ast_nodes`) that classifies every buffer access
as an affine function of the lane coordinates (``threadIdx``/``blockIdx``)
and loop counters, and derives per-kernel findings:

``write-write-race``
    two lanes may store to the same element of a buffer;
``duplicate-scatter``
    a single store statement targets the same element from several lanes;
``cross-lane-read``
    a lane may read an element another lane wrote;
``out-of-bounds``
    an index may leave ``[0, size)`` (only decidable when launch geometry
    and buffer sizes are supplied);
``barrier-divergence``
    ``__syncthreads()`` under a condition that is not uniform across lanes;
``uninitialized-read``
    a local variable may be read before every path assigned it.

Every finding carries a verdict from the three-point lattice

    ``SAFE``  <  ``UNKNOWN``  <  ``HAZARD``

with the **soundness rule**: ``SAFE`` is only emitted when the access
pattern is *proven* clean for every launch the report's lane-coordinate
requirements admit — the lockstep engine (:mod:`.lockstep`) relies on this
to drop its runtime reader/writer lane tracking for statically-safe
buffers.  ``HAZARD`` is best-effort ("there is a plausible launch where
this goes wrong") and ``UNKNOWN`` is the honest default whenever an index
is not affine, a loop bound is data-dependent, or geometry is missing.

The affine machinery is symbolic: coefficients are polynomials over the
scalar integer parameters (``n``, ``m``, …) and the launch-dimension
pseudo-parameters (``blockDim.x``, ``gridDim.y``, …), so a row-major store
like ``C[i * n + j]`` with guards ``i < m && j < n`` is proven injective
across lanes *without* knowing ``n`` — the guard-established span of the
inner term is compared against the outer stride symbolically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.sandbox.cuda_c import ast_nodes as ast

__all__ = [
    "SAFE",
    "HAZARD",
    "UNKNOWN",
    "FINDING_KINDS",
    "LANE_COORDS",
    "Finding",
    "StaticReport",
    "analyze_kernel",
    "active_race_safe",
]

SAFE = "SAFE"
HAZARD = "HAZARD"
UNKNOWN = "UNKNOWN"

FINDING_KINDS = (
    "write-write-race",
    "duplicate-scatter",
    "cross-lane-read",
    "out-of-bounds",
    "barrier-divergence",
    "uninitialized-read",
)

#: The six lane coordinates a CUDA launch varies over.
LANE_COORDS = ("tid.x", "tid.y", "tid.z", "ctaid.x", "ctaid.y", "ctaid.z")

_MEMBER_COORD = {
    ("threadIdx", "x"): "tid.x", ("threadIdx", "y"): "tid.y", ("threadIdx", "z"): "tid.z",
    ("blockIdx", "x"): "ctaid.x", ("blockIdx", "y"): "ctaid.y", ("blockIdx", "z"): "ctaid.z",
}
_MEMBER_DIM = {
    ("blockDim", "x"): "blockDim.x", ("blockDim", "y"): "blockDim.y",
    ("blockDim", "z"): "blockDim.z", ("gridDim", "x"): "gridDim.x",
    ("gridDim", "y"): "gridDim.y", ("gridDim", "z"): "gridDim.z",
}
#: Extent of each lane coordinate under a concrete (grid, block) launch.
_COORD_EXTENT = {
    "tid.x": ("block", 0), "tid.y": ("block", 1), "tid.z": ("block", 2),
    "ctaid.x": ("grid", 0), "ctaid.y": ("grid", 1), "ctaid.z": ("grid", 2),
}
#: Pure math intrinsics the interpreter supports; calling them never writes.
_PURE_CALLS = {
    "sqrt", "sqrtf", "fabs", "fabsf", "abs", "min", "max", "fmin", "fmax",
    "exp", "expf", "pow", "powf", "floor", "ceil", "fminf", "fmaxf",
}
_INT_TYPES = {"int", "long", "size_t", "unsigned", "unsigned int", "long long", "bool"}


# ---------------------------------------------------------------------------
# Polynomials over nonnegative integer parameters
# ---------------------------------------------------------------------------
# A polynomial is a dict mapping a sorted monomial tuple of parameter names
# to an integer coefficient; the empty tuple is the constant term.  Scalar
# kernel parameters are sizes and launch dimensions, so the nonnegativity
# certificates below assume every parameter is >= 0 — which is sound for the
# injectivity proofs because every claim is conditioned on the guard ranges
# being nonempty (a negative size empties the guard and the claim becomes
# vacuous).

def _pconst(value: int) -> dict:
    return {(): value} if value else {}


def _pvar(name: str) -> dict:
    return {(name,): 1}


def _padd(a: dict, b: dict) -> dict:
    out = dict(a)
    for mono, coeff in b.items():
        new = out.get(mono, 0) + coeff
        if new:
            out[mono] = new
        else:
            out.pop(mono, None)
    return out


def _pneg(a: dict) -> dict:
    return {mono: -coeff for mono, coeff in a.items()}


def _psub(a: dict, b: dict) -> dict:
    return _padd(a, _pneg(b))


def _pmul(a: dict, b: dict) -> dict:
    out: dict = {}
    for ma, ca in a.items():
        for mb, cb in b.items():
            mono = tuple(sorted(ma + mb))
            new = out.get(mono, 0) + ca * cb
            if new:
                out[mono] = new
            else:
                out.pop(mono, None)
    return out


def _pis_nonneg(a: dict) -> bool:
    return all(coeff >= 0 for coeff in a.values())


def _pis_nonpos(a: dict) -> bool:
    return all(coeff <= 0 for coeff in a.values())


def _pabs(a: dict) -> dict | None:
    if _pis_nonneg(a):
        return a
    if _pis_nonpos(a):
        return _pneg(a)
    return None


def _pas_int(a: dict) -> int | None:
    if not a:
        return 0
    if set(a) == {()}:
        return a[()]
    return None


def _pge(a: dict, b: dict) -> bool:
    """``a >= b`` provable under the nonnegative-parameter assumption."""
    return _pis_nonneg(_psub(a, b))


# ---------------------------------------------------------------------------
# Intervals with polynomial endpoints (None = unbounded)
# ---------------------------------------------------------------------------

def _iadd(a: tuple, b: tuple) -> tuple:
    lo = _padd(a[0], b[0]) if a[0] is not None and b[0] is not None else None
    hi = _padd(a[1], b[1]) if a[1] is not None and b[1] is not None else None
    return (lo, hi)


def _iscale(iv: tuple, poly: dict) -> tuple:
    if _pis_nonneg(poly):
        lo = _pmul(iv[0], poly) if iv[0] is not None else None
        hi = _pmul(iv[1], poly) if iv[1] is not None else None
        return (lo, hi)
    if _pis_nonpos(poly):
        lo = _pmul(iv[1], poly) if iv[1] is not None else None
        hi = _pmul(iv[0], poly) if iv[0] is not None else None
        return (lo, hi)
    return (None, None)


def _iintersect(a: tuple, b: tuple) -> tuple:
    def pick(x, y, prefer_greater):
        if x is None:
            return y
        if y is None:
            return x
        if _pge(x, y):
            return x if prefer_greater else y
        if _pge(y, x):
            return y if prefer_greater else x
        # Incomparable symbolically; keep the first (sound for refinement:
        # the true set is contained in either).
        return x

    return (pick(a[0], b[0], True), pick(a[1], b[1], False))


def _ihull(a: tuple, b: tuple) -> tuple:
    def pick(x, y, prefer_greater):
        if x is None or y is None:
            return None
        if _pge(x, y):
            return x if prefer_greater else y
        if _pge(y, x):
            return y if prefer_greater else x
        return None

    return (pick(a[0], b[0], False), pick(a[1], b[1], True))


_FULL = (None, None)


# ---------------------------------------------------------------------------
# Linear forms over analysis symbols
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Lin:
    """``const + sum(terms[sym] * sym)`` with polynomial coefficients."""

    terms: tuple  # sorted tuple of (symbol-id, poly-as-frozenset-of-items)
    const: tuple  # poly as sorted tuple of items

    @staticmethod
    def _freeze(poly: dict) -> tuple:
        return tuple(sorted(poly.items()))

    @staticmethod
    def _thaw(frozen: tuple) -> dict:
        return dict(frozen)

    @classmethod
    def make(cls, terms: dict, const: dict) -> "_Lin":
        items = tuple(sorted((sym, cls._freeze(p)) for sym, p in terms.items() if p))
        return cls(terms=items, const=cls._freeze(const))

    def term_map(self) -> dict:
        return {sym: self._thaw(p) for sym, p in self.terms}

    def const_poly(self) -> dict:
        return self._thaw(self.const)


def _lin_const(poly: dict) -> _Lin:
    return _Lin.make({}, poly)


def _lin_sym(sym: str) -> _Lin:
    return _Lin.make({sym: _pconst(1)}, {})


def _lin_add(a: _Lin, b: _Lin, sign: int = 1) -> _Lin:
    terms = a.term_map()
    for sym, poly in b.term_map().items():
        add = poly if sign > 0 else _pneg(poly)
        terms[sym] = _padd(terms.get(sym, {}), add)
    const = _padd(a.const_poly(), b.const_poly() if sign > 0 else _pneg(b.const_poly()))
    return _Lin.make(terms, const)


def _lin_scale(a: _Lin, poly: dict) -> _Lin:
    return _Lin.make(
        {sym: _pmul(p, poly) for sym, p in a.term_map().items()},
        _pmul(a.const_poly(), poly),
    )


@dataclass(frozen=True)
class _AbsVal:
    """Abstract value: optional linear form, interval, attainability flag."""

    lin: _Lin | None
    iv: tuple
    exact: bool

    @classmethod
    def top(cls) -> "_AbsVal":
        return cls(lin=None, iv=_FULL, exact=False)


# ---------------------------------------------------------------------------
# Findings and reports
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Finding:
    """One analyzed hazard class for one buffer (or barrier/local)."""

    kind: str
    verdict: str
    buffer: str
    detail: str
    line: int

    def to_payload(self) -> dict:
        return {
            "kind": self.kind,
            "verdict": self.verdict,
            "buffer": self.buffer,
            "detail": self.detail,
            "line": self.line,
        }


@dataclass
class StaticReport:
    """Everything the static pass derived for one kernel definition."""

    kernel: str
    findings: tuple[Finding, ...] = ()
    #: Buffers whose write/read pattern is proven race-free, mapped to the
    #: lane coordinates their indices actually use.  The proof only covers
    #: launches where every *unused* coordinate has extent 1 — callers must
    #: check that with :func:`active_race_safe` before acting on it.
    race_safe: dict = field(default_factory=dict)
    written: tuple[str, ...] = ()

    def verdict(self, kind: str) -> str:
        """The lattice join of every finding of ``kind`` (SAFE if none)."""
        verdicts = [f.verdict for f in self.findings if f.kind == kind]
        if HAZARD in verdicts:
            return HAZARD
        if UNKNOWN in verdicts:
            return UNKNOWN
        return SAFE

    @property
    def overall(self) -> str:
        verdicts = {self.verdict(kind) for kind in FINDING_KINDS}
        if HAZARD in verdicts:
            return HAZARD
        if UNKNOWN in verdicts:
            return UNKNOWN
        return SAFE

    def hazards(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.verdict == HAZARD)

    def to_payload(self) -> list[dict]:
        return [f.to_payload() for f in self.findings]


def active_race_safe(report: StaticReport, grid: tuple, block: tuple) -> frozenset:
    """Race-safe buffers whose proof requirements hold for this launch.

    A buffer proven safe over, say, ``{tid.x, ctaid.x}`` is only safe when
    the launch does not vary lanes along the other coordinates — two lanes
    differing only in ``threadIdx.y`` would collide on an x-indexed store.
    """
    extents = {"grid": tuple(grid) + (1, 1, 1), "block": tuple(block) + (1, 1, 1)}
    active = set()
    for name, used in report.race_safe.items():
        ok = True
        for coord in LANE_COORDS:
            if coord in used:
                continue
            which, axis = _COORD_EXTENT[coord]
            if int(extents[which][axis]) != 1:
                ok = False
                break
        if ok:
            active.add(name)
    return frozenset(active)


# ---------------------------------------------------------------------------
# Access records
# ---------------------------------------------------------------------------

@dataclass
class _Access:
    buffer: str
    idx: _AbsVal
    line: int
    pinned: frozenset  # lane coords pinned to a single value by guards
    in_loop: bool
    refine: dict = field(default_factory=dict)  # guard intervals at the site


@dataclass
class _State:
    env: dict
    refine: dict
    defined: set
    uniform: str  # "uniform" | "lane" | "top"
    loop_depth: int = 0

    def copy(self) -> "_State":
        return _State(
            env=dict(self.env),
            refine=dict(self.refine),
            defined=set(self.defined),
            uniform=self.uniform,
            loop_depth=self.loop_depth,
        )


@dataclass
class _SymInfo:
    kind: str  # "lane" | "loop" | "var"
    interval: tuple
    defexpr: _Lin | None
    exact: bool
    name: str = ""


_WORST = {SAFE: 0, UNKNOWN: 1, HAZARD: 2}


def _join_verdict(a: str, b: str) -> str:
    return a if _WORST[a] >= _WORST[b] else b


class _Analysis:
    def __init__(self, definition, grid, block, buffer_sizes, scalar_args):
        self.definition = definition
        self.grid = tuple(grid) + (1, 1, 1) if grid else None
        self.block = tuple(block) + (1, 1, 1) if block else None
        self.buffer_sizes = dict(buffer_sizes or {})
        self.scalar_args = dict(scalar_args or {})
        self.symbols: dict[str, _SymInfo] = {}
        self.counter = itertools.count()
        self.pointer_params = {p.name for p in definition.params if p.is_pointer}
        self.stores: dict[str, list[_Access]] = {}
        self.reads: dict[str, list[_Access]] = {}
        self.atomic_targets: set[str] = set()
        self.poisoned: set[str] = set()
        self.barrier_findings: list[Finding] = []
        self.uninit: dict[str, Finding] = {}
        self.current_line = definition.line
        self.ever_assigned = set()
        self._collect_assigned(definition.body)
        self._lane_syms = {}
        for coord in LANE_COORDS:
            which, axis = _COORD_EXTENT[coord]
            extent = None
            if which == "grid" and self.grid is not None:
                extent = int(self.grid[axis])
            if which == "block" and self.block is not None:
                extent = int(self.block[axis])
            if extent is not None:
                hi = _pconst(extent - 1)
            else:
                dim = ("gridDim" if which == "grid" else "blockDim") + "." + "xyz"[axis]
                hi = _psub(_pvar(dim), _pconst(1))
            sym = f"lane:{coord}"
            self.symbols[sym] = _SymInfo(
                kind="lane", interval=(_pconst(0), hi), defexpr=None, exact=True, name=coord
            )
            self._lane_syms[coord] = sym
        self._resolved: dict[tuple, object] = {}

    # -- setup ---------------------------------------------------------------
    def _collect_assigned(self, node) -> None:
        if isinstance(node, ast.Block):
            for stmt in node.statements:
                self._collect_assigned(stmt)
        elif isinstance(node, ast.Decl):
            if node.init is not None:
                self.ever_assigned.add(node.name)
        elif isinstance(node, ast.Assign):
            if isinstance(node.target, ast.Var):
                self.ever_assigned.add(node.target.name)
            self._collect_assigned_expr(node.target)
        elif isinstance(node, ast.If):
            self._collect_assigned(node.then)
            if node.orelse is not None:
                self._collect_assigned(node.orelse)
        elif isinstance(node, ast.For):
            if node.init is not None:
                self._collect_assigned(node.init)
            if node.update is not None:
                self._collect_assigned(node.update)
            self._collect_assigned(node.body)
        elif isinstance(node, ast.While):
            self._collect_assigned(node.body)

    def _collect_assigned_expr(self, node) -> None:
        if isinstance(node, ast.Unary) and node.op in ("pre++", "pre--"):
            if isinstance(node.operand, ast.Var):
                self.ever_assigned.add(node.operand.name)

    def _initial_state(self) -> _State:
        env: dict = {}
        defined = set()
        for param in self.definition.params:
            defined.add(param.name)
            if param.is_pointer:
                env[param.name] = "__pointer__"
            elif param.type in _INT_TYPES:
                value = self.scalar_args.get(param.name)
                poly = _pconst(int(value)) if value is not None else _pvar(param.name)
                env[param.name] = _AbsVal(lin=_lin_const(poly), iv=(poly, poly), exact=True)
            else:
                env[param.name] = _AbsVal.top()
        return _State(env=env, refine={}, defined=defined, uniform="uniform")

    def _new_symbol(self, kind: str, name: str, interval: tuple,
                    defexpr: _Lin | None, exact: bool) -> str:
        sym = f"{kind}:{name}:{next(self.counter)}"
        self.symbols[sym] = _SymInfo(
            kind=kind, interval=interval, defexpr=defexpr, exact=exact, name=name
        )
        return sym

    # -- symbol resolution ---------------------------------------------------
    def _sym_interval(self, sym: str, state: _State) -> tuple:
        base = self.symbols[sym].interval
        refined = state.refine.get(sym)
        # Refined bounds first: on symbolically-incomparable endpoints the
        # intersection keeps its first argument, and the guard-established
        # bound is the one the injectivity proofs need.
        return _iintersect(refined, base) if refined is not None else base

    def _resolve(self, sym: str, state: _State):
        """(ok, coords, injective, contiguous) for one symbol.

        ``injective``/``contiguous`` describe the symbol as a function of its
        lane coordinates; loop counters resolve with empty coords.
        """
        info = self.symbols[sym]
        if info.kind == "lane":
            return (True, frozenset((info.name,)), True, True)
        if info.kind == "loop":
            return (True, frozenset(), True, True)
        if info.defexpr is None:
            return (False, frozenset(), False, False)
        ok, coords, injective, contiguous, _used = self._lane_check(info.defexpr, state)
        return (ok, coords, injective and bool(coords), contiguous)

    def _lane_check(self, lin: _Lin, state: _State):
        """Check lane-injectivity of a linear form via mixed-radix strides.

        Returns ``(ok, coords, injective, contiguous, lane_terms)``:
        *ok* means every symbol resolved; *injective* means two lanes that
        differ in any coordinate of *coords* produce different values —
        proven by finding a term ordering where each stride covers the
        guard-established span of everything inner to it.
        """
        terms = lin.term_map()
        resolved = []
        coords: set[str] = set()
        for sym, coeff in terms.items():
            ok, sym_coords, sym_inj, sym_contig = self._resolve(sym, state)
            if not ok:
                return (False, frozenset(), False, False, ())
            if sym_coords and not sym_inj:
                return (True, frozenset(coords | set(sym_coords)), False, False, ())
            if sym_coords & coords:
                # Two terms over the same coordinate: not independent.
                return (True, frozenset(coords | set(sym_coords)), False, False, ())
            coords |= set(sym_coords)
            abs_coeff = _pabs(coeff)
            if abs_coeff is None:
                return (True, frozenset(coords), False, False, ())
            resolved.append((sym, abs_coeff, sym_coords, sym_contig))
        if not coords:
            return (True, frozenset(), False, False, ())
        if len(resolved) > 6:
            return (True, frozenset(coords), False, False, ())
        # Try orderings: innermost-first list where each stride covers the
        # accumulated inner width.
        for order in itertools.permutations(resolved):
            widths: dict = _pconst(0)
            contiguous = all(item[3] for item in resolved)
            feasible = True
            for sym, coeff, _c, _contig in order:
                lo, hi = self._sym_interval(sym, state)
                if lo is None or hi is None:
                    feasible = False
                    break
                width = _pmul(coeff, _psub(hi, lo))
                # stride must exceed the inner width: coeff >= widths + 1
                if not _pge(coeff, _padd(widths, _pconst(1))):
                    feasible = False
                    break
                if contiguous and _psub(coeff, _padd(widths, _pconst(1))):
                    contiguous = False
                widths = _padd(widths, width)
            if feasible:
                return (True, frozenset(coords), True, contiguous, tuple(order))
        return (True, frozenset(coords), False, False, ())

    def _lin_interval(self, lin: _Lin, state: _State) -> tuple:
        iv = (lin.const_poly(), lin.const_poly())
        for sym, coeff in lin.term_map().items():
            iv = _iadd(iv, _iscale(self._sym_interval(sym, state), coeff))
        return iv

    # -- expression evaluation -----------------------------------------------
    def _eval(self, node, state: _State) -> _AbsVal:
        if isinstance(node, ast.Num):
            if isinstance(node.value, int):
                poly = _pconst(node.value)
                return _AbsVal(lin=_lin_const(poly), iv=(poly, poly), exact=True)
            return _AbsVal.top()
        if isinstance(node, ast.Var):
            return self._eval_var(node, state)
        if isinstance(node, ast.Member):
            key = (node.base, node.field)
            if key in _MEMBER_COORD:
                sym = self._lane_syms[_MEMBER_COORD[key]]
                return _AbsVal(
                    lin=_lin_sym(sym), iv=self._sym_interval(sym, state), exact=True
                )
            if key in _MEMBER_DIM:
                name = _MEMBER_DIM[key]
                which, axis = ("grid", "xyz".index(node.field)) if node.base == "gridDim" \
                    else ("block", "xyz".index(node.field))
                concrete = self.grid if which == "grid" else self.block
                poly = _pconst(int(concrete[axis])) if concrete is not None else _pvar(name)
                return _AbsVal(lin=_lin_const(poly), iv=(poly, poly), exact=True)
            return _AbsVal.top()
        if isinstance(node, ast.Index):
            self._record_read(node, state)
            return _AbsVal.top()
        if isinstance(node, ast.Unary):
            return self._eval_unary(node, state)
        if isinstance(node, ast.Binary):
            return self._eval_binary(node, state)
        if isinstance(node, ast.Ternary):
            return self._eval_ternary(node, state)
        if isinstance(node, ast.Call):
            return self._eval_call(node, state)
        return _AbsVal.top()

    def _eval_var(self, node, state: _State) -> _AbsVal:
        name = node.name
        value = state.env.get(name)
        if value == "__pointer__":
            return _AbsVal.top()
        if isinstance(value, _AbsVal):
            return value
        if isinstance(value, str):  # local bound to a symbol
            info = self.symbols[value]
            return _AbsVal(
                lin=_lin_sym(value),
                iv=self._sym_interval(value, state),
                exact=info.exact,
            )
        # Unknown identifier: possibly read-before-assignment.
        if name not in self.uninit:
            verdict = UNKNOWN if name in self.ever_assigned else HAZARD
            detail = (
                f"local {name!r} may be read before assignment"
                if name in self.ever_assigned
                else f"identifier {name!r} is never assigned"
            )
            self.uninit[name] = Finding(
                kind="uninitialized-read", verdict=verdict, buffer=name,
                detail=detail, line=self.current_line,
            )
        return _AbsVal.top()

    def _eval_unary(self, node, state: _State) -> _AbsVal:
        operand = self._eval(node.operand, state)
        if node.op == "+":
            return operand
        if node.op == "-":
            if operand.lin is None:
                return _AbsVal.top()
            lin = _lin_scale(operand.lin, _pconst(-1))
            return _AbsVal(lin=lin, iv=_iscale(operand.iv, _pconst(-1)), exact=operand.exact)
        if node.op in ("pre++", "pre--") and isinstance(node.operand, ast.Var):
            self._rebind_top(node.operand.name, state)
        return _AbsVal.top()

    def _eval_binary(self, node, state: _State) -> _AbsVal:
        if node.op in ("&&", "||", "==", "!=", "<", ">", "<=", ">="):
            self._eval(node.left, state)
            self._eval(node.right, state)
            return _AbsVal(lin=None, iv=(_pconst(0), _pconst(1)), exact=False)
        left = self._eval(node.left, state)
        right = self._eval(node.right, state)
        if node.op in ("+", "-"):
            sign = 1 if node.op == "+" else -1
            if left.lin is not None and right.lin is not None:
                # Recompute the interval from the combined form so repeated
                # symbols cancel (``i - i`` is exactly 0, not [lo-hi, hi-lo]).
                lin = _lin_add(left.lin, right.lin, sign)
                return _AbsVal(lin=lin, iv=self._lin_interval(lin, state),
                               exact=left.exact and right.exact)
            iv = _iadd(left.iv, _iscale(right.iv, _pconst(sign)))
            return _AbsVal(lin=None, iv=iv, exact=False)
        if node.op == "*":
            for a, b in ((left, right), (right, left)):
                if a.lin is not None and not a.lin.terms:
                    scale = a.lin.const_poly()
                    scale_int = _pas_int(scale)
                    # |scale| > 1 leaves gaps, so interval endpoints stay
                    # attained but interior values are not: exact only
                    # survives scaling by -1/0/1 or a single-point operand
                    # (e.g. blockIdx.x under a one-block launch).
                    single = (b.iv[0] is not None and b.iv[1] is not None
                              and not _psub(b.iv[1], b.iv[0]))
                    keeps_exact = b.exact and (
                        single or (scale_int is not None and abs(scale_int) <= 1)
                    )
                    if b.lin is not None:
                        return _AbsVal(
                            lin=_lin_scale(b.lin, scale),
                            iv=_iscale(b.iv, scale),
                            exact=keeps_exact,
                        )
                    return _AbsVal(lin=None, iv=_iscale(b.iv, scale), exact=False)
            return _AbsVal.top()
        return _AbsVal.top()

    def _eval_ternary(self, node, state: _State) -> _AbsVal:
        self._eval(node.cond, state)
        then = self._eval(node.then, state)
        orelse = self._eval(node.orelse, state)
        if then.lin is not None and then.lin == orelse.lin:
            return _AbsVal(
                lin=then.lin, iv=_ihull(then.iv, orelse.iv),
                exact=then.exact and orelse.exact,
            )
        return _AbsVal(lin=None, iv=_ihull(then.iv, orelse.iv), exact=False)

    def _eval_call(self, node, state: _State) -> _AbsVal:
        if node.name == "atomicAdd" and node.args:
            # Targets: `out[i]`, `&out[i]` (Unary wrapper), or a bare pointer
            # addressing element 0 — mirroring the interpreter's acceptance.
            target = node.args[0]
            if isinstance(target, ast.Unary):
                target = target.operand
            if isinstance(target, ast.Index):
                self._record_atomic(target, state)
            elif isinstance(target, ast.Var) and target.name in self.pointer_params:
                self.atomic_targets.add(target.name)
            for arg in node.args[1:]:
                self._eval(arg, state)
            return _AbsVal.top()
        for arg in node.args:
            self._eval(arg, state)
            if node.name not in _PURE_CALLS:
                self._poison_pointer_args(arg)
        return _AbsVal.top()

    def _poison_pointer_args(self, arg) -> None:
        """An unknown call taking a pointer may write anywhere through it."""
        if isinstance(arg, ast.Var) and arg.name in self.pointer_params:
            self.poisoned.add(arg.name)
        elif isinstance(arg, ast.Unary):
            self._poison_pointer_args(arg.operand)
        elif isinstance(arg, ast.Index):
            base = arg
            while isinstance(base, ast.Index):
                base = base.base
            if isinstance(base, ast.Var) and base.name in self.pointer_params:
                self.poisoned.add(base.name)

    # -- access recording ----------------------------------------------------
    def _buffer_of(self, node) -> str | None:
        base = node
        while isinstance(base, ast.Index):
            base = base.base
        if isinstance(base, ast.Var) and base.name in self.pointer_params:
            return base.name
        return None

    def _pinned_coords(self, state: _State) -> frozenset:
        pinned: set[str] = set()
        for sym, iv in state.refine.items():
            lo, hi = iv
            if lo is None or hi is None or _psub(hi, lo):
                continue
            ok, coords, injective, _ = self._resolve(sym, state)
            if ok and injective and coords:
                pinned |= set(coords)
        return frozenset(pinned)

    def _record_read(self, node, state: _State) -> None:
        buffer = self._buffer_of(node)
        if buffer is None:
            # Local-array access: evaluate the index for side effects only.
            self._eval(node.index, state)
            if isinstance(node.base, ast.Index):
                self._eval(node.base, state)
            return
        if isinstance(node.base, ast.Index):
            self.poisoned.add(buffer)
            return
        idx = self._eval(node.index, state)
        self.reads.setdefault(buffer, []).append(
            _Access(buffer=buffer, idx=idx, line=self.current_line,
                    pinned=self._pinned_coords(state), in_loop=state.loop_depth > 0,
                    refine=dict(state.refine))
        )

    def _record_store(self, node, state: _State) -> None:
        buffer = self._buffer_of(node)
        if buffer is None:
            self._eval(node.index, state)
            return
        if isinstance(node.base, ast.Index):
            self.poisoned.add(buffer)
            return
        idx = self._eval(node.index, state)
        self.stores.setdefault(buffer, []).append(
            _Access(buffer=buffer, idx=idx, line=self.current_line,
                    pinned=self._pinned_coords(state), in_loop=state.loop_depth > 0,
                    refine=dict(state.refine))
        )

    def _record_atomic(self, node, state: _State) -> None:
        buffer = self._buffer_of(node)
        if buffer is None:
            return
        self.atomic_targets.add(buffer)
        idx = self._eval(node.index, state)
        self.reads.setdefault(buffer, []).append(
            _Access(buffer=buffer, idx=idx, line=self.current_line,
                    pinned=self._pinned_coords(state), in_loop=state.loop_depth > 0,
                    refine=dict(state.refine))
        )

    # -- guard refinement ----------------------------------------------------
    def _single_symbol(self, val: _AbsVal):
        """``(sym, offset)`` when the value is ``sym + offset`` (coeff 1)."""
        if val.lin is None:
            return None
        terms = val.lin.term_map()
        if len(terms) != 1:
            return None
        (sym, coeff), = terms.items()
        if _pas_int(coeff) != 1:
            return None
        return (sym, val.lin.const_poly())

    def _apply_refinement(self, cond, state: _State) -> None:
        if isinstance(cond, ast.Binary) and cond.op == "&&":
            self._apply_refinement(cond.left, state)
            self._apply_refinement(cond.right, state)
            return
        if not (isinstance(cond, ast.Binary) and cond.op in ("<", "<=", ">", ">=", "==")):
            return
        left = self._eval(cond.left, state)
        right = self._eval(cond.right, state)
        for val, other, op in ((left, right, cond.op), (right, left, _FLIP[cond.op])):
            target = self._single_symbol(val)
            if target is None:
                continue
            sym, offset = target
            lo, hi = None, None
            if op in ("<", "<="):
                bound = other.iv[1]
                if bound is not None:
                    hi = _psub(bound, offset)
                    if op == "<":
                        hi = _psub(hi, _pconst(1))
            elif op in (">", ">="):
                bound = other.iv[0]
                if bound is not None:
                    lo = _psub(bound, offset)
                    if op == ">":
                        lo = _padd(lo, _pconst(1))
            elif op == "==":
                if other.iv[0] is not None and other.iv[1] is not None \
                        and not _psub(other.iv[1], other.iv[0]):
                    lo = _psub(other.iv[0], offset)
                    hi = lo
            if lo is None and hi is None:
                continue
            current = state.refine.get(sym, _FULL)
            state.refine[sym] = _iintersect(current, (lo, hi))

    def _cond_uniformity(self, cond, state: _State) -> str:
        """"uniform" / "lane" / "top" for a branch condition."""
        val = self._cond_scan(cond, state)
        return val

    def _cond_scan(self, node, state: _State) -> str:
        if isinstance(node, (ast.Num,)):
            return "uniform"
        if isinstance(node, ast.Member):
            key = (node.base, node.field)
            if key in _MEMBER_COORD:
                return "lane"
            return "uniform"
        if isinstance(node, ast.Var):
            value = state.env.get(node.name)
            if isinstance(value, _AbsVal):
                return "uniform" if value.lin is not None else "top"
            if isinstance(value, str) and value != "__pointer__":
                ok, coords, _inj, _c = self._resolve(value, state)
                if not ok:
                    return "top"
                return "lane" if coords else "uniform"
            if value == "__pointer__":
                return "uniform"
            return "top"
        if isinstance(node, ast.Index):
            return "top"
        if isinstance(node, ast.Call):
            return "top"
        if isinstance(node, ast.Unary):
            return self._cond_scan(node.operand, state)
        if isinstance(node, ast.Binary):
            left = self._cond_scan(node.left, state)
            right = self._cond_scan(node.right, state)
            for level in ("lane", "top", "uniform"):
                if left == level or right == level:
                    return level
            return "uniform"
        if isinstance(node, ast.Ternary):
            results = {
                self._cond_scan(node.cond, state),
                self._cond_scan(node.then, state),
                self._cond_scan(node.orelse, state),
            }
            for level in ("lane", "top", "uniform"):
                if level in results:
                    return level
        return "top"

    @staticmethod
    def _merge_uniform(current: str, cond: str) -> str:
        order = {"uniform": 0, "top": 1, "lane": 2}
        return current if order[current] >= order[cond] else cond

    # -- statement walk ------------------------------------------------------
    def _rebind_top(self, name: str, state: _State) -> None:
        sym = self._new_symbol("var", name, _FULL, None, False)
        state.env[name] = sym
        state.defined.add(name)

    def _bind(self, name: str, value: _AbsVal, state: _State) -> None:
        defexpr = value.lin
        sym = self._new_symbol("var", name, value.iv, defexpr, value.exact)
        state.env[name] = sym
        state.defined.add(name)

    def _walk_block(self, block: ast.Block, state: _State) -> None:
        for stmt in block.statements:
            self._walk(stmt, state)

    def _walk(self, stmt, state: _State) -> None:
        line = getattr(stmt, "line", 0)
        if line:
            self.current_line = line
        if isinstance(stmt, ast.Block):
            self._walk_block(stmt, state)
        elif isinstance(stmt, ast.Decl):
            self._walk_decl(stmt, state)
        elif isinstance(stmt, ast.Assign):
            self._walk_assign(stmt, state)
        elif isinstance(stmt, ast.If):
            self._walk_if(stmt, state)
        elif isinstance(stmt, ast.For):
            self._walk_for(stmt, state)
        elif isinstance(stmt, ast.While):
            self._walk_while(stmt, state)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value, state)
        elif isinstance(stmt, ast.ExprStmt):
            self._walk_expr_stmt(stmt, state)
        # Break/Continue: nothing to evaluate; joins stay conservative.

    def _walk_decl(self, stmt: ast.Decl, state: _State) -> None:
        if isinstance(stmt.init, ast.Call) and stmt.init.name == "__local_array__":
            self._eval(stmt.init.args[0], state)
            state.env[stmt.name] = _AbsVal.top()
            state.defined.add(stmt.name)
            return
        if stmt.init is None:
            # Declared but not yet defined; reads before an assignment flag.
            state.env.pop(stmt.name, None)
            state.defined.discard(stmt.name)
            return
        value = self._eval(stmt.init, state)
        if stmt.type not in _INT_TYPES:
            value = _AbsVal(lin=None, iv=value.iv, exact=False)
        self._bind(stmt.name, value, state)

    def _walk_assign(self, stmt: ast.Assign, state: _State) -> None:
        value = self._eval(stmt.value, state)
        if isinstance(stmt.target, ast.Index):
            if stmt.op != "=":
                # Compound store reads the element before writing it back.
                self._record_read(stmt.target, state)
            self._record_store(stmt.target, state)
            return
        if isinstance(stmt.target, ast.Member):
            return
        name = stmt.target.name
        if stmt.op == "=":
            self._bind(name, value, state)
            return
        old = self._eval(stmt.target, state)
        if stmt.op in ("+=", "-=") and old.lin is not None and value.lin is not None:
            sign = 1 if stmt.op == "+=" else -1
            combined = _AbsVal(
                lin=_lin_add(old.lin, value.lin, sign),
                iv=_iadd(old.iv, _iscale(value.iv, _pconst(sign))),
                exact=old.exact and value.exact,
            )
            self._bind(name, combined, state)
        else:
            self._rebind_top(name, state)

    def _walk_if(self, stmt: ast.If, state: _State) -> None:
        cond_uniformity = self._cond_uniformity(stmt.cond, state)
        self._eval(stmt.cond, state)
        then_state = state.copy()
        then_state.uniform = self._merge_uniform(state.uniform, cond_uniformity)
        self._apply_refinement(stmt.cond, then_state)
        self._walk_block(stmt.then, then_state)
        if stmt.orelse is not None:
            else_state = state.copy()
            else_state.uniform = then_state.uniform
            self._walk_block(stmt.orelse, else_state)
            self._join_into(state, then_state, else_state)
        else:
            self._join_into(state, then_state, state.copy())

    def _join_into(self, state: _State, a: _State, b: _State) -> None:
        state.defined = a.defined & b.defined
        names = set(a.env) | set(b.env)
        env: dict = {}
        for name in names:
            va, vb = a.env.get(name), b.env.get(name)
            if va == vb and va is not None:
                env[name] = va
            elif name in state.defined:
                # Divergent values: a fresh opaque symbol with the hull.
                iv_a = self._value_interval(va, a)
                iv_b = self._value_interval(vb, b)
                env[name] = self._new_symbol("var", name, _ihull(iv_a, iv_b), None, False)
            # else: not definitely assigned; leave unbound.
        state.env = env
        # Refinements from inside the branches do not survive the join.

    def _value_interval(self, value, state: _State) -> tuple:
        if isinstance(value, _AbsVal):
            return value.iv
        if isinstance(value, str) and value in self.symbols:
            return self._sym_interval(value, state)
        return _FULL

    def _havoc_assigned(self, body, state: _State, skip: set) -> None:
        assigned: set[str] = set()

        def collect(node):
            if isinstance(node, ast.Block):
                for sub in node.statements:
                    collect(sub)
            elif isinstance(node, ast.Decl):
                assigned.add(node.name)
            elif isinstance(node, ast.Assign):
                if isinstance(node.target, ast.Var):
                    assigned.add(node.target.name)
            elif isinstance(node, ast.If):
                collect(node.then)
                if node.orelse is not None:
                    collect(node.orelse)
            elif isinstance(node, ast.For):
                if node.init is not None:
                    collect(node.init)
                if node.update is not None:
                    collect(node.update)
                collect(node.body)
            elif isinstance(node, ast.While):
                collect(node.body)

        collect(body)
        for name in assigned - skip:
            if name in state.env:
                self._rebind_top(name, state)

    def _loop_counter(self, stmt: ast.For):
        """``(name, init_expr, bound_expr, inclusive, step)`` or None."""
        name = None
        init_expr = None
        if isinstance(stmt.init, ast.Decl) and stmt.init.init is not None:
            name, init_expr = stmt.init.name, stmt.init.init
        elif isinstance(stmt.init, ast.Assign) and isinstance(stmt.init.target, ast.Var) \
                and stmt.init.op == "=":
            name, init_expr = stmt.init.target.name, stmt.init.value
        if name is None:
            return None
        cond = stmt.cond
        if not (isinstance(cond, ast.Binary) and cond.op in ("<", "<=")
                and isinstance(cond.left, ast.Var) and cond.left.name == name):
            return None
        update = stmt.update
        step = None
        if isinstance(update, ast.Assign) and isinstance(update.target, ast.Var) \
                and update.target.name == name and update.op == "+=" \
                and isinstance(update.value, ast.Num) and isinstance(update.value.value, int) \
                and update.value.value > 0:
            step = update.value.value
        if step is None:
            return None
        return (name, init_expr, cond.right, cond.op == "<=", step)

    def _walk_for(self, stmt: ast.For, state: _State) -> None:
        counter = self._loop_counter(stmt)
        if counter is None:
            if stmt.init is not None:
                self._walk(stmt.init, state)
            self._havoc_assigned(stmt.body, state, skip=set())
            if stmt.update is not None:
                self._havoc_assigned(stmt.update, state, skip=set())
            inner = state.copy()
            inner.uniform = self._merge_uniform(state.uniform, "top")
            inner.loop_depth += 1
            if stmt.cond is not None:
                self._eval(stmt.cond, inner)
                self._apply_refinement(stmt.cond, inner)
            self._walk_block(stmt.body, inner)
            state.defined &= inner.defined | state.defined
            return
        name, init_expr, bound_expr, inclusive, step = counter
        pre_defined = set(state.defined)
        self._havoc_assigned(stmt.body, state, skip={name})
        init_val = self._eval(init_expr, state)
        bound_val = self._eval(bound_expr, state)
        hi = bound_val.iv[1]
        if hi is not None and not inclusive:
            hi = _psub(hi, _pconst(1))
        exact = init_val.exact and bound_val.exact and step == 1
        sym = self._new_symbol("loop", name, (init_val.iv[0], hi), None, exact)
        inner = state.copy()
        inner.env[name] = sym
        inner.defined.add(name)
        inner.loop_depth += 1
        bound_uniformity = self._merge_uniform(
            self._cond_scan(init_expr, state), self._cond_scan(bound_expr, state)
        )
        inner.uniform = self._merge_uniform(state.uniform, bound_uniformity)
        self._walk_block(stmt.body, inner)
        # The body may not execute at all: only pre-loop definitions survive,
        # and variables the body assigned keep their havoced bindings.
        state.defined = pre_defined
        if isinstance(stmt.init, ast.Assign):
            self._rebind_top(name, state)

    def _walk_while(self, stmt: ast.While, state: _State) -> None:
        self._havoc_assigned(stmt.body, state, skip=set())
        pre_defined = set(state.defined)
        inner = state.copy()
        inner.loop_depth += 1
        cond_uniformity = self._cond_uniformity(stmt.cond, inner)
        self._eval(stmt.cond, inner)
        self._apply_refinement(stmt.cond, inner)
        inner.uniform = self._merge_uniform(state.uniform, cond_uniformity)
        self._walk_block(stmt.body, inner)
        state.defined = pre_defined

    def _walk_expr_stmt(self, stmt: ast.ExprStmt, state: _State) -> None:
        expr = stmt.expr
        if isinstance(expr, ast.Call) and expr.name in ("__syncthreads", "__syncwarp"):
            if state.uniform == "lane":
                self.barrier_findings.append(Finding(
                    kind="barrier-divergence", verdict=HAZARD, buffer="",
                    detail=f"{expr.name}() under a lane-dependent condition",
                    line=self.current_line,
                ))
            elif state.uniform == "top":
                self.barrier_findings.append(Finding(
                    kind="barrier-divergence", verdict=UNKNOWN, buffer="",
                    detail=f"{expr.name}() under a condition the analysis cannot "
                           "prove uniform",
                    line=self.current_line,
                ))
            else:
                self.barrier_findings.append(Finding(
                    kind="barrier-divergence", verdict=SAFE, buffer="",
                    detail=f"{expr.name}() on a uniform path",
                    line=self.current_line,
                ))
            return
        self._eval(expr, state)

    # -- buffer classification ----------------------------------------------
    def _classify_store(self, access: _Access):
        """``(verdict, used_coords, key, detail)`` for one store site.

        Classification replays the guard refinements that were live at the
        store site (branch joins deliberately drop them from the flowing
        state, but an access *inside* the guard is still bounded by it).
        """
        state = _State(env={}, refine=access.refine, defined=set(), uniform="uniform")
        idx = access.idx
        if idx.lin is None:
            return (UNKNOWN, frozenset(), None, "store index is not affine")
        ok, coords, injective, _contig, _ = self._lane_check(idx.lin, state)
        if not ok:
            return (UNKNOWN, frozenset(), None, "store index uses an unresolved value")
        has_loop = any(
            self.symbols[sym].kind == "loop" for sym in idx.lin.term_map()
        )
        if not coords:
            if access.pinned:
                return (SAFE, access.pinned, idx.lin,
                        "lane-invariant store pinned to a single lane by a guard")
            if has_loop:
                return (UNKNOWN, frozenset(), None,
                        "loop-carried store index with no lane term")
            return (HAZARD, frozenset(), None,
                    "every lane stores to the same element")
        if injective:
            return (SAFE, coords, idx.lin, "affine store index, injective across lanes")
        return (UNKNOWN, coords, None, "lane-dependent store index not proven injective")

    def _buffer_findings(self) -> tuple[list, dict]:
        findings: list[Finding] = []
        race_safe: dict = {}
        written = sorted(set(self.stores) | self.atomic_targets)
        for buffer in written:
            stores = self.stores.get(buffer, [])
            line = stores[0].line if stores else self.definition.line
            if buffer in self.poisoned:
                for kind in ("write-write-race", "duplicate-scatter", "cross-lane-read"):
                    findings.append(Finding(
                        kind=kind, verdict=UNKNOWN, buffer=buffer,
                        detail="buffer escapes through an unknown call", line=line,
                    ))
                continue
            if buffer in self.atomic_targets:
                for kind in ("write-write-race", "duplicate-scatter", "cross-lane-read"):
                    findings.append(Finding(
                        kind=kind, verdict=UNKNOWN, buffer=buffer,
                        detail="atomic updates are ordered at runtime", line=line,
                    ))
                continue
            classified = [self._classify_store(s) for s in stores]
            ww = SAFE
            dup = SAFE
            used: frozenset = frozenset()
            keys = []
            detail = "affine store index, injective across lanes"
            for (verdict, coords, key, det), store in zip(classified, stores):
                dup = _join_verdict(dup, verdict)
                ww = _join_verdict(ww, verdict)
                used |= coords
                keys.append(key)
                if verdict != SAFE:
                    detail = det
                    line = store.line
            if ww == SAFE and len({k for k in keys}) > 1:
                # Individually injective stores with *different* index maps can
                # still collide across statements (lane 0's second store may hit
                # lane 1's first target).
                ww = UNKNOWN
                detail = "multiple store sites with different index maps"
            reads = self.reads.get(buffer, [])
            read_verdict = SAFE
            read_detail = "reads only the lane's own element"
            read_line = line
            if ww == SAFE and keys:
                store_key = keys[0]
                for read in reads:
                    if read.idx.lin is None:
                        read_verdict = UNKNOWN
                        read_detail = "read index of a written buffer is not affine"
                        read_line = read.line
                    elif read.idx.lin != store_key:
                        read_verdict = _join_verdict(read_verdict, UNKNOWN)
                        read_detail = "read index differs from the store index"
                        read_line = read.line
            else:
                read_verdict = UNKNOWN if reads else SAFE
                read_detail = "write pattern unresolved; reads not comparable"
            findings.append(Finding(
                kind="write-write-race", verdict=ww, buffer=buffer,
                detail=detail, line=line,
            ))
            findings.append(Finding(
                kind="duplicate-scatter", verdict=dup, buffer=buffer,
                detail=detail, line=line,
            ))
            findings.append(Finding(
                kind="cross-lane-read", verdict=read_verdict, buffer=buffer,
                detail=read_detail, line=read_line,
            ))
            if ww == SAFE and dup == SAFE and read_verdict == SAFE:
                race_safe[buffer] = used
        return findings, race_safe

    def _oob_findings(self) -> list[Finding]:
        findings: list[Finding] = []
        buffers = sorted(set(self.stores) | set(self.reads))
        for buffer in buffers:
            size = self.buffer_sizes.get(buffer)
            accesses = self.stores.get(buffer, []) + self.reads.get(buffer, [])
            verdict = SAFE
            detail = "every access proven inside [0, size)"
            line = accesses[0].line if accesses else self.definition.line
            if size is None:
                verdict = UNKNOWN
                detail = "buffer size unknown to the analysis"
            else:
                for access in accesses:
                    lo = _pas_int(access.idx.iv[0]) if access.idx.iv[0] is not None else None
                    hi = _pas_int(access.idx.iv[1]) if access.idx.iv[1] is not None else None
                    if lo is None or hi is None:
                        verdict = _join_verdict(verdict, UNKNOWN)
                        detail = "index range not concrete under this launch"
                        line = access.line
                    elif 0 <= lo and hi < int(size):
                        continue
                    elif access.idx.exact:
                        verdict = HAZARD
                        detail = (f"index range [{lo}, {hi}] leaves [0, {int(size)})"
                                  " and every value in it is attained")
                        line = access.line
                        break
                    else:
                        verdict = _join_verdict(verdict, UNKNOWN)
                        detail = f"index range [{lo}, {hi}] may leave [0, {int(size)})"
                        line = access.line
            findings.append(Finding(
                kind="out-of-bounds", verdict=verdict, buffer=buffer,
                detail=detail, line=line,
            ))
        return findings

    # -- driver ---------------------------------------------------------------
    def run(self) -> StaticReport:
        state = self._initial_state()
        self._walk_block(self.definition.body, state)
        findings, race_safe = self._buffer_findings()
        findings.extend(self._oob_findings())
        findings.extend(self.barrier_findings)
        findings.extend(self.uninit[name] for name in sorted(self.uninit))
        for name in self.poisoned:
            race_safe.pop(name, None)
        return StaticReport(
            kernel=self.definition.name,
            findings=tuple(findings),
            race_safe=race_safe,
            written=tuple(sorted(set(self.stores) | self.atomic_targets)),
        )


def analyze_kernel(definition, *, grid=None, block=None,
                   buffer_sizes=None, scalar_args=None) -> StaticReport:
    """Statically analyze one parsed kernel definition.

    ``grid``/``block`` (3-tuples), ``buffer_sizes`` (pointer-param name →
    element count) and ``scalar_args`` (int-param name → value) are all
    optional; without them the race classes still resolve symbolically but
    out-of-bounds verdicts stay ``UNKNOWN``.  The pass never executes the
    kernel and is deterministic for a given input.
    """
    try:
        return _Analysis(definition, grid, block, buffer_sizes, scalar_args).run()
    except RecursionError:
        # Pathological nesting: fall back to an empty, all-unknown report.
        return StaticReport(
            kernel=definition.name,
            findings=tuple(
                Finding(kind=kind, verdict=UNKNOWN, buffer="",
                        detail="analysis aborted on pathological nesting",
                        line=definition.line)
                for kind in FINDING_KINDS
            ),
        )


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "=="}
