"""Lockstep (vectorized) execution engine for the CUDA-C interpreter.

The scalar interpreter sweeps the launch grid one thread at a time through a
tree-walking evaluator: every kernel launch costs O(threads x AST nodes) of
pure-Python dispatch.  This module compiles a kernel definition **once** into
a tree of closures (compiled dispatch — no per-node ``isinstance`` walking at
launch time) that evaluate every statement for *all* threads of the launch in
lockstep over numpy lane arrays:

* a *lane* is one (block, thread) pair; ``threadIdx``/``blockIdx`` become
  precomputed ``(lanes,)`` int64 arrays (cached per launch geometry),
* per-thread locals are either uniform Python scalars (when every lane holds
  the same value — loop counters stay cheap) or ``(lanes,)`` arrays,
* divergent ``if``/``else`` branches run under an active-lane mask,
* loops iterate with a shrinking mask until every lane has exited
  (``break``/``continue``/``return`` subtract lanes via mask frames), and
* ``__syncthreads__`` is a natural no-op barrier: all lanes already move
  statement-by-statement together.

Equivalence with the scalar interpreter (which runs threads *sequentially*,
so thread t sees every write of threads 0..t-1 and none of t+1..) is enforced
structurally, not hoped for: the compiled program refuses at *compile time*
any construct it cannot model (the kernel then always takes the scalar path),
and at *run time* it detects **hazards** — cross-lane reads of written
buffer elements, duplicate scatter targets, integer overflow beyond int64,
division by zero, out-of-bounds indices, math-domain errors, step-budget
exhaustion — restores the pre-launch buffer snapshots and raises
:class:`LockstepHazard`, upon which the caller replays the launch through the
scalar interpreter.  A hazard therefore costs speed, never correctness: the
scalar path remains the single source of truth for every observable effect
(buffer bytes, error type, error message, partial-mutation state).

The module keeps process-wide counters (:func:`lockstep_stats`) so benchmarks
and CI can assert that the stock kernel corpus runs fully vectorized with
zero silent fallbacks.
"""

from __future__ import annotations

import contextlib
import math
import os
import threading
from typing import Any, Callable

import numpy as np

from repro.sandbox.cuda_c import ast_nodes as ast
from repro.sandbox.cuda_c.static import active_race_safe, analyze_kernel

__all__ = [
    "LockstepHazard",
    "LockstepUnsupported",
    "LockstepProgram",
    "try_compile",
    "lockstep_stats",
    "reset_lockstep_stats",
    "static_elision",
    "static_elision_enabled",
]

_INT64_MIN = -(2 ** 63)
#: Conservative magnitude bound for int64 products, checked on a float64
#: approximation: any true overflow exceeds it, and values this large are
#: outside what the scalar interpreter's exact Python ints would share with
#: int64 lanes anyway.
_MUL_GUARD = float(2 ** 62)

#: Writer-lane sentinel: element written by multiple lanes / atomic duplicates.
_MANY_WRITERS = -2


class LockstepUnsupported(Exception):
    """Compile-time: the kernel uses a construct the lockstep engine cannot
    prove equivalent to sequential-thread execution; use the scalar path."""


class LockstepHazard(Exception):
    """Run-time: this *launch* left the provable-equivalence envelope.

    Raised only after the program restored every mutated buffer to its
    pre-launch bytes, so the caller can replay the launch through the scalar
    interpreter and get the authoritative (byte-identical) behavior."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


# ---------------------------------------------------------------------------
# stats
# ---------------------------------------------------------------------------

_STATS_LOCK = threading.Lock()
_STATS: dict[str, int] = {}


def _note(key: str, count: int = 1) -> None:
    with _STATS_LOCK:
        _STATS[key] = _STATS.get(key, 0) + count


def lockstep_stats() -> dict[str, int]:
    """Process-wide lockstep counters (copies; keys appear on first use).

    ``kernels_lockstep`` / ``kernels_scalar_only`` count compilation
    outcomes; ``launches_lockstep`` / ``launches_scalar_fallback`` (runtime
    hazard replays) / ``launches_scalar_only`` (compile-rejected kernels) /
    ``launches_scalar_forced`` (scalar mode requested) count execution
    outcomes; ``launches_static_elided`` counts launches where at least one
    buffer ran with statically-elided hazard tracking; per-reason
    ``fallback[<reason>]`` and ``unsupported[<reason>]`` keys explain why.
    """
    with _STATS_LOCK:
        return dict(_STATS)


def reset_lockstep_stats() -> None:
    """Zero the counters (benchmark / CI-smoke isolation helper)."""
    with _STATS_LOCK:
        _STATS.clear()


# ---------------------------------------------------------------------------
# static-analysis elision toggle
# ---------------------------------------------------------------------------
# Buffers the static pass (:mod:`.static`) proves race-free skip the runtime
# reader/writer lane tracking.  The toggle exists so the soundness harness
# can run with tracking fully on and use the runtime hazards as the oracle
# for the analyzer's SAFE verdicts.

_ELISION_ENABLED = os.environ.get("REPRO_CUDA_STATIC_ELISION", "1") != "0"


def static_elision_enabled() -> bool:
    """Is static-analysis-based hazard-tracking elision currently on?"""
    return _ELISION_ENABLED


@contextlib.contextmanager
def static_elision(enabled: bool):
    """Temporarily force hazard-tracking elision on or off.

    Compiled programs are unaffected — the elision decision is made per
    launch — so flipping this mid-process is safe.
    """
    global _ELISION_ENABLED
    previous = _ELISION_ENABLED
    _ELISION_ENABLED = enabled
    try:
        yield
    finally:
        _ELISION_ENABLED = previous


# ---------------------------------------------------------------------------
# launch geometry (cached lane index arrays)
# ---------------------------------------------------------------------------

_GEOMETRY_LOCK = threading.Lock()
_GEOMETRY_CACHE: dict[tuple, dict] = {}


def _lane_geometry(grid, block) -> dict:
    """Per-(grid, block) lane arrays, mirroring the scalar sweep order
    (block z/y/x outer, thread z/y/x inner, x fastest)."""
    key = (grid.x, grid.y, grid.z, block.x, block.y, block.z)
    with _GEOMETRY_LOCK:
        cached = _GEOMETRY_CACHE.get(key)
    if cached is not None:
        return cached
    threads = block.x * block.y * block.z
    lanes = np.arange(grid.x * grid.y * grid.z * threads, dtype=np.int64)
    within = lanes % threads
    blk = lanes // threads
    geom = {
        "lane_ids": lanes,
        "tix": within % block.x,
        "tiy": (within // block.x) % block.y,
        "tiz": within // (block.x * block.y),
        "bix": blk % grid.x,
        "biy": (blk // grid.x) % grid.y,
        "biz": blk // (grid.x * grid.y),
        "full": np.ones(lanes.size, dtype=bool),
    }
    for arr in geom.values():
        arr.setflags(write=False)
    with _GEOMETRY_LOCK:
        _GEOMETRY_CACHE.setdefault(key, geom)
    return geom


# ---------------------------------------------------------------------------
# runtime context
# ---------------------------------------------------------------------------

class _Ctx:
    """Mutable per-launch state shared by every compiled closure."""

    __slots__ = (
        "n", "lane_ids", "full",
        "tix", "tiy", "tiz", "bix", "biy", "biz",
        "bdx", "bdy", "bdz", "gdx", "gdy", "gdz",
        "env", "partial", "buffers", "lane_mats",
        "writers", "readers", "snapshots", "safe_buffers",
        "ret", "brk", "cnt", "flow_clean",
        "budget",
    )

    def restore_buffers(self) -> None:
        for arr, copy in self.snapshots.values():
            np.copyto(arr, copy)


def _zeros_mask(ctx: _Ctx) -> np.ndarray:
    return np.zeros(ctx.n, dtype=bool)


def _enter(ctx: _Ctx, mask: np.ndarray) -> np.ndarray | None:
    """Per-statement prologue: budget accounting + live-lane mask."""
    ctx.budget -= 1
    if ctx.budget <= 0:
        raise LockstepHazard("step-budget")
    if ctx.flow_clean:
        return mask
    m = mask & ~ctx.ret
    m &= ~ctx.brk
    m &= ~ctx.cnt
    return m if m.any() else None


# ---------------------------------------------------------------------------
# value helpers
# ---------------------------------------------------------------------------

def _intish(v: Any) -> bool:
    """Does ``v`` carry the scalar interpreter's *integer* semantics?"""
    if isinstance(v, np.ndarray):
        return v.dtype.kind in "iub"
    return isinstance(v, (bool, int)) and not isinstance(v, float)


def _as_i64(v: Any) -> np.ndarray:
    return np.asarray(v, dtype=np.int64)  # OverflowError on huge Python ints


def _truthy_lanes(v: Any) -> Any:
    """Per-lane truthiness: bool array for lane values, Python bool for
    uniform ones.  Matches ``bool(value)`` per thread (NaN is truthy)."""
    if isinstance(v, np.ndarray):
        return v != 0
    return bool(v)


def _int_result(a: Any, b: Any) -> bool:
    return _intish(a) and _intish(b)


def _checked_int_add(a: Any, b: Any, sub: bool = False) -> np.ndarray:
    a64, b64 = _as_i64(a), _as_i64(b)
    r = np.subtract(a64, b64) if sub else np.add(a64, b64)
    if sub:
        overflow = ((a64 ^ b64) & (a64 ^ r)) < 0
    else:
        overflow = ((a64 ^ r) & (b64 ^ r)) < 0
    if overflow.any():
        raise LockstepHazard("int-overflow")
    return r


def _operand_abs_bound(v: Any) -> int:
    """Max |v| (per lane), used to prove products cannot overflow int64."""
    if isinstance(v, np.ndarray):
        bound = int(np.max(np.abs(_as_i64(v)))) if v.size else 0
        if bound < 0:  # np.abs(int64 min) wraps negative
            raise LockstepHazard("int-overflow")
        return bound
    return abs(int(v))


def _checked_int_mul(a: Any, b: Any) -> np.ndarray:
    if _operand_abs_bound(a) < 2 ** 31 and _operand_abs_bound(b) < 2 ** 31:
        # Products stay below 2**62: provably exact in int64.
        return np.multiply(_as_i64(a), _as_i64(b))
    approx = np.multiply(np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64))
    if np.any(np.abs(approx) > _MUL_GUARD):
        raise LockstepHazard("int-overflow")
    return np.multiply(_as_i64(a), _as_i64(b))


def _check_divisor(b: Any, m: np.ndarray) -> None:
    """Scalar raises on any zero divisor (CudaRuntimeError for int //,
    ZeroDivisionError for / and %) — any active zero is a hazard."""
    if isinstance(b, np.ndarray):
        if np.any(b[m] == 0):
            raise LockstepHazard("zero-divisor")
    elif b == 0:
        raise LockstepHazard("zero-divisor")


def _binary_py(op: str, a: Any, b: Any) -> Any:
    """Exact Python arithmetic for uniform operands (the scalar semantics).
    Comparisons never reach here — they compile through the mask path."""
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if _intish(a) and _intish(b):
            return a // b
        return a / b
    if op == "%":
        return a % b
    raise LockstepUnsupported(f"operator {op!r}")


_CMP_UFUNCS = {
    "<": np.less, ">": np.greater, "<=": np.less_equal,
    ">=": np.greater_equal, "==": np.equal, "!=": np.not_equal,
}


def _binary_value(op: str, a: Any, b: Any, m: np.ndarray) -> Any:
    """Apply ``op`` elementwise with the scalar interpreter's semantics.

    Uniform operands use exact Python arithmetic; lane arrays use int64
    (with overflow hazards — Python ints never overflow) or float64.
    Divisions hazard on any active zero divisor, because the scalar path
    raises there.
    """
    a_arr = isinstance(a, np.ndarray)
    b_arr = isinstance(b, np.ndarray)
    if not a_arr and not b_arr:
        if op in ("/", "%"):
            _check_divisor(b, m)
        try:
            return _binary_py(op, a, b)
        except LockstepUnsupported:
            raise
        except Exception as exc:  # e.g. OverflowError — replay for the exact error
            raise LockstepHazard(f"uniform-arith:{type(exc).__name__}") from exc
    try:
        int_int = _int_result(a, b)
        if op == "+":
            return _checked_int_add(a, b) if int_int else np.add(a, b)
        if op == "-":
            return _checked_int_add(a, b, sub=True) if int_int else np.subtract(a, b)
        if op == "*":
            return _checked_int_mul(a, b) if int_int else np.multiply(a, b)
        if op == "/":
            _check_divisor(b, m)
            if int_int:
                return np.floor_divide(_as_i64(a), _as_i64(b))
            return np.true_divide(a, b)
        if op == "%":
            _check_divisor(b, m)
            if int_int:
                return np.mod(_as_i64(a), _as_i64(b))
            return np.mod(a, b)
    except LockstepHazard:
        raise
    except OverflowError as exc:  # Python int too large for an int64 lane
        raise LockstepHazard("int-overflow") from exc
    raise LockstepUnsupported(f"operator {op!r}")


def _apply_op_value(op: str, current: Any, value: Any, m: np.ndarray) -> Any:
    """Compound assignment on per-thread locals: the scalar `_apply_op` uses
    *plain* Python operators — `/=` is true division even for ints (unlike
    the `/` binary operator), and a zero divisor raises ZeroDivisionError —
    so this mirrors exactly that, not :func:`_binary_value`."""
    a_arr = isinstance(current, np.ndarray)
    b_arr = isinstance(value, np.ndarray)
    if not a_arr and not b_arr:
        if op in ("/", "%"):
            _check_divisor(value, m)
        try:
            if op == "+":
                return current + value
            if op == "-":
                return current - value
            if op == "*":
                return current * value
            if op == "/":
                return current / value
            if op == "%":
                return current % value
        except Exception as exc:
            raise LockstepHazard(f"uniform-arith:{type(exc).__name__}") from exc
        raise LockstepUnsupported(f"assign-op:{op}")
    int_int = _int_result(current, value)
    try:
        if op == "+":
            return _checked_int_add(current, value) if int_int else np.add(current, value)
        if op == "-":
            return _checked_int_add(current, value, sub=True) if int_int else np.subtract(current, value)
        if op == "*":
            return _checked_int_mul(current, value) if int_int else np.multiply(current, value)
        if op == "/":
            _check_divisor(value, m)
            return np.true_divide(current, value)
        if op == "%":
            _check_divisor(value, m)
            return np.mod(current, value)
    except LockstepHazard:
        raise
    except OverflowError as exc:
        raise LockstepHazard("int-overflow") from exc
    raise LockstepUnsupported(f"assign-op:{op}")


_BUFFER_OP_UFUNCS = {
    "+": np.add, "-": np.subtract, "*": np.multiply,
    "/": np.true_divide, "%": np.mod,
}


def _apply_op_buffer(op: str, current: np.ndarray, value: Any) -> np.ndarray:
    """Compound assignment on buffer elements: both interpreter paths read
    numpy scalars/arrays here, so numpy's own semantics (wraparound ints,
    inf on /0 with a suppressed warning) already agree — apply the ufunc
    directly with no hazard checks."""
    ufunc = _BUFFER_OP_UFUNCS.get(op)
    if ufunc is None:
        raise LockstepUnsupported(f"assign-op:{op}")
    return ufunc(current, value)


def _merge_masked(new: Any, old: Any, m: np.ndarray) -> np.ndarray:
    """np.where(m, new, old) with per-lane *type* preservation: merging an
    int-semantics value with a float-semantics one would silently change
    later `/` behavior on some lanes, so it hazards instead."""
    if _intish(new) != _intish(old):
        raise LockstepHazard("mixed-type-merge")
    try:
        return np.where(m, new, old)
    except OverflowError as exc:
        raise LockstepHazard("int-overflow") from exc


def _uniform_int(value: Any, m: np.ndarray) -> int:
    """Collapse a value that must be lane-uniform (e.g. a local-array size)
    to a Python int, hazarding when lanes disagree."""
    if isinstance(value, np.ndarray):
        active = value[m]
        if active.size == 0 or np.any(active != active[0]):
            raise LockstepHazard("non-uniform-size")
        value = active[0]
    try:
        return int(value)
    except (ValueError, OverflowError) as exc:  # NaN / inf sizes
        raise LockstepHazard("bad-size") from exc


# ---------------------------------------------------------------------------
# buffer access helpers (bounds / cross-lane hazard checks, snapshots)
# ---------------------------------------------------------------------------

def _compressed_indices(idx: Any, m: np.ndarray, size: int) -> np.ndarray:
    """Active-lane indices as int64, bounds-checked against ``size``.

    Matches the scalar `int(eval(index))` semantics: floats truncate toward
    zero; NaN/inf (which make scalar `int()` raise) and any out-of-bounds
    active index are hazards — the scalar replay raises the exact error.
    """
    if isinstance(idx, np.ndarray):
        sel = idx[m]
        if sel.dtype.kind == "f":
            if not np.all(np.isfinite(sel)):
                raise LockstepHazard("bad-index")
            sel = np.trunc(sel).astype(np.int64)
        else:
            sel = sel.astype(np.int64, copy=False)
    else:
        try:
            i = int(idx)
        except (ValueError, OverflowError) as exc:
            raise LockstepHazard("bad-index") from exc
        sel = np.full(int(m.sum()), i, dtype=np.int64)
    if sel.size and (sel.min() < 0 or sel.max() >= size):
        raise LockstepHazard("out-of-bounds")
    return sel


def _check_read_clean(ctx: _Ctx, arr: np.ndarray, sel: np.ndarray, m: np.ndarray) -> None:
    """Hazard if any active lane reads an element some *other* lane wrote
    earlier in this launch (sequential threads would see a different
    interleaving)."""
    writers = ctx.writers.get(id(arr))
    if writers is None:
        return
    w = writers[sel]
    if np.any((w != -1) & (w != ctx.lane_ids[m])):
        raise LockstepHazard("cross-lane-read")


def _prepare_write(ctx: _Ctx, arr: np.ndarray) -> np.ndarray:
    """Snapshot a buffer before its first write (for hazard restore) and
    return its writer-lane tracking array."""
    key = id(arr)
    writers = ctx.writers.get(key)
    if writers is None:
        ctx.snapshots[key] = (arr, arr.copy())
        writers = ctx.writers[key] = np.full(arr.size, -1, dtype=np.int64)
    return writers


def _snapshot_only(ctx: _Ctx, arr: np.ndarray) -> None:
    """Snapshot a statically race-safe buffer without writer tracking.

    The snapshot stays mandatory even for proven-safe buffers: an unrelated
    hazard elsewhere in the launch restores *every* mutated buffer before the
    scalar replay, and a replay starting from half-written state would
    corrupt read-modify-write kernels."""
    key = id(arr)
    if key not in ctx.snapshots:
        ctx.snapshots[key] = (arr, arr.copy())


def _check_write_clean(writers: np.ndarray, sel: np.ndarray, lanes: np.ndarray) -> None:
    w = writers[sel]
    if np.any((w != -1) & (w != lanes)):
        raise LockstepHazard("cross-lane-write")


def _record_readers(ctx: _Ctx, arr: np.ndarray, m: np.ndarray, sel) -> None:
    """Track which lane read each element of a *written* buffer.

    The scalar engine runs thread t's whole kernel after thread t-1's, so
    t's reads observe every write of lower threads — including writes that
    happen in a *later statement* of the kernel text (`double t = y[0];
    y[i] = t + 1.0;`).  A write to an element some other lane read is
    therefore order-sensitive; :func:`_check_no_foreign_readers` hazards on
    it.  Same-lane read-modify-write (`y[i] = a*x[i] + y[i]`) stays
    vectorized.  Only buffers the kernel writes are tracked (compile-time
    knowledge), so hot read-only gathers pay nothing."""
    key = id(arr)
    readers = ctx.readers.get(key)
    if readers is None:
        readers = ctx.readers[key] = np.full(arr.size, -1, dtype=np.int64)
    lanes = ctx.lane_ids[m]
    if isinstance(sel, int):
        current = readers[sel]
        if lanes.size == 1 and current in (-1, lanes[0]):
            readers[sel] = lanes[0]
        else:
            readers[sel] = _MANY_WRITERS
        return
    current = readers[sel]
    readers[sel] = np.where((current != -1) & (current != lanes), _MANY_WRITERS, lanes)


def _check_no_foreign_readers(ctx: _Ctx, arr: np.ndarray,
                              sel: np.ndarray, lanes: np.ndarray) -> None:
    """Hazard when writing an element a *different* lane already read."""
    readers = ctx.readers.get(id(arr))
    if readers is None:
        return
    r = readers[sel]
    if np.any((r != -1) & (r != lanes)):
        raise LockstepHazard("write-after-read")


def _has_duplicates(sel: np.ndarray) -> bool:
    if sel.size <= 1:
        return False
    ordered = np.sort(sel)
    return bool(np.any(ordered[1:] == ordered[:-1]))


def _check_store_range(arr: np.ndarray, vals: Any) -> None:
    """Hazard on lane values an integer buffer cannot hold.

    The scalar engine assigns numpy *scalars* element by element, which
    raises OverflowError for out-of-range values; an int64 lane array
    assigned into an int32 buffer would instead wrap silently.  Out-of-range
    (or non-finite float) stores defer to the scalar replay for the exact
    error and partial-mutation state."""
    if arr.dtype.kind not in "iu" or not isinstance(vals, np.ndarray):
        # Uniform Python values go through numpy's own scalar conversion,
        # which raises exactly like the scalar engine (caught by callers).
        return
    info = np.iinfo(arr.dtype)
    if vals.dtype.kind == "f":
        if not np.all(np.isfinite(vals)):
            raise LockstepHazard("bad-store")
    if np.any(vals < info.min) or np.any(vals > info.max):
        raise LockstepHazard("bad-store")


_SUPPORTED_BUFFER_KINDS = "fiub"


def _buffer_ok(arr: np.ndarray) -> bool:
    kind = arr.dtype.kind
    if kind not in _SUPPORTED_BUFFER_KINDS:
        return False
    if kind == "u" and arr.dtype.itemsize >= 8:
        return False  # uint64 values do not fit int64 lanes
    if kind == "f" and arr.dtype.itemsize > 8:
        return False  # long double would lose bits in float64 lanes
    return True


def _gather_dtype(arr: np.ndarray):
    return np.float64 if arr.dtype.kind == "f" else np.int64


# ---------------------------------------------------------------------------
# math calls
# ---------------------------------------------------------------------------

def _py_math(func: Callable, args: list) -> Any:
    """Uniform-operand math call through the real :mod:`math` functions (the
    scalar semantics, including their exceptions — which become hazards so
    the replay raises them exactly)."""
    try:
        return func(*args)
    except Exception as exc:
        raise LockstepHazard(f"math-domain:{type(exc).__name__}") from exc


def _pairwise_min(a: Any, b: Any) -> Any:
    # Python's min(a, b) is `b if b < a else a`; np.where reproduces that
    # exactly, including the NaN-comparison behavior.
    return np.where(np.asarray(b < a), b, a)


def _pairwise_max(a: Any, b: Any) -> Any:
    return np.where(np.asarray(b > a), b, a)


def _vector_minmax(args: list, m: np.ndarray, maximum: bool) -> Any:
    intish = [_intish(a) for a in args]
    if any(intish) and not all(intish):
        raise LockstepHazard("mixed-type-merge")
    result = args[0]
    for other in args[1:]:
        result = _pairwise_max(result, other) if maximum else _pairwise_min(result, other)
    return result


def _vector_sqrt(x: Any, m: np.ndarray) -> np.ndarray:
    checked = x[m] if isinstance(x, np.ndarray) else x
    if np.any(np.asarray(checked) < 0):
        raise LockstepHazard("math-domain:sqrt")
    return np.sqrt(np.asarray(x, dtype=np.float64))


def _vector_exp(x: Any, m: np.ndarray) -> np.ndarray:
    x_f = np.asarray(x, dtype=np.float64)
    r = np.exp(x_f)
    bad = np.isinf(r) & np.isfinite(x_f)
    if np.any(bad[m] if bad.ndim else bad):
        raise LockstepHazard("math-domain:exp")  # math.exp raises OverflowError
    return r


def _vector_pow(a: Any, b: Any, m: np.ndarray) -> np.ndarray:
    a_f = np.asarray(a, dtype=np.float64)
    b_f = np.asarray(b, dtype=np.float64)
    r = np.power(a_f, b_f)
    nan_in = np.isnan(a_f) | np.isnan(b_f)
    finite_in = np.isfinite(a_f) & np.isfinite(b_f)
    bad = (np.isnan(r) & ~nan_in) | (np.isinf(r) & finite_in)
    if np.any(bad[m] if bad.ndim else bad):
        raise LockstepHazard("math-domain:pow")  # math.pow raises ValueError/OverflowError
    return r


# ---------------------------------------------------------------------------
# the compiler
# ---------------------------------------------------------------------------

_BUILTIN_DIMS = {"threadIdx", "blockIdx", "blockDim", "gridDim"}
_DIM_FIELDS = ("x", "y", "z")
_MEMBER_ATTRS = {
    ("threadIdx", "x"): "tix", ("threadIdx", "y"): "tiy", ("threadIdx", "z"): "tiz",
    ("blockIdx", "x"): "bix", ("blockIdx", "y"): "biy", ("blockIdx", "z"): "biz",
    ("blockDim", "x"): "bdx", ("blockDim", "y"): "bdy", ("blockDim", "z"): "bdz",
    ("gridDim", "x"): "gdx", ("gridDim", "y"): "gdy", ("gridDim", "z"): "gdz",
}
_INT_DECL_TYPES = ("unsigned", "long", "size_t")


def _is_int_decl(type_name: str) -> bool:
    return type_name.startswith("int") or type_name in _INT_DECL_TYPES


class _Compiler:
    """One-shot AST -> closure-tree compiler for a single kernel."""

    def __init__(self, definition: ast.KernelDef, safe_candidates: frozenset = frozenset()):
        self.definition = definition
        #: Buffers the static pass proved race-free (subject to the launch
        #: honoring their lane-coordinate requirements, checked per launch):
        #: their scatters/gathers compile with an elided-tracking fast path.
        self.safe_candidates = safe_candidates
        self.pointer_params = {p.name for p in definition.params if p.is_pointer}
        self.scalar_params = [p for p in definition.params if not p.is_pointer]
        self.local_arrays: set[str] = set()
        #: Pointer params this kernel writes (scatter or atomicAdd targets).
        #: Gathers from these buffers maintain reader-lane tracking so later
        #: writes can detect cross-lane write-after-read hazards; gathers
        #: from read-only buffers (the hot inner-loop case) skip it.
        self.written_params: set[str] = set()
        #: Lexical loop nesting depth during compilation: break/continue
        #: outside any loop behave as escaping signals in the scalar engine,
        #: not as lane-mask subtractions — such kernels stay scalar-only.
        self._loop_depth = 0
        self._scan_block(definition.body)
        self.body = self._compile_block(definition.body)

    # -- pre-scan: classify names, reject shadowing ------------------------
    def _scan_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self._scan_stmt(stmt)

    def _scan_stmt(self, stmt: object) -> None:
        if isinstance(stmt, ast.Block):
            self._scan_block(stmt)
        elif isinstance(stmt, ast.Decl):
            if stmt.name in self.pointer_params:
                raise LockstepUnsupported("pointer-param-shadowed")
            if isinstance(stmt.init, ast.Call) and stmt.init.name == "__local_array__":
                self.local_arrays.add(stmt.name)
            elif stmt.name in self.local_arrays:
                raise LockstepUnsupported("name-kind-conflict")
            if stmt.init is not None:
                self._scan_expr(stmt.init)
        elif isinstance(stmt, ast.Assign):
            if isinstance(stmt.target, ast.Var):
                if stmt.target.name in self.pointer_params:
                    raise LockstepUnsupported("pointer-param-shadowed")
                if stmt.target.name in self.local_arrays:
                    raise LockstepUnsupported("name-kind-conflict")
            elif isinstance(stmt.target, ast.Index):
                base = stmt.target.base
                if isinstance(base, ast.Var) and base.name in self.pointer_params:
                    self.written_params.add(base.name)
                self._scan_expr(stmt.target.index)
            self._scan_expr(stmt.value)
        elif isinstance(stmt, ast.If):
            self._scan_expr(stmt.cond)
            self._scan_block(stmt.then)
            if stmt.orelse is not None:
                self._scan_block(stmt.orelse)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._scan_stmt(stmt.init)
            if stmt.cond is not None:
                self._scan_expr(stmt.cond)
            if stmt.update is not None:
                self._scan_stmt(stmt.update)
            self._scan_block(stmt.body)
        elif isinstance(stmt, ast.While):
            self._scan_expr(stmt.cond)
            self._scan_block(stmt.body)
        elif isinstance(stmt, ast.ExprStmt):
            self._scan_expr(stmt.expr)

    def _scan_expr(self, node: object) -> None:
        """Collect atomicAdd write targets from expression trees."""
        if isinstance(node, ast.Call):
            if node.name == "atomicAdd" and node.args:
                target = node.args[0]
                if isinstance(target, ast.Unary):
                    target = target.operand
                if isinstance(target, ast.Index):
                    target = target.base
                if isinstance(target, ast.Var) and target.name in self.pointer_params:
                    self.written_params.add(target.name)
            for arg in node.args:
                self._scan_expr(arg)
        elif isinstance(node, ast.Binary):
            self._scan_expr(node.left)
            self._scan_expr(node.right)
        elif isinstance(node, ast.Unary):
            self._scan_expr(node.operand)
        elif isinstance(node, ast.Ternary):
            self._scan_expr(node.cond)
            self._scan_expr(node.then)
            self._scan_expr(node.orelse)
        elif isinstance(node, ast.Index):
            self._scan_expr(node.base)
            self._scan_expr(node.index)

    # -- statements --------------------------------------------------------
    def _compile_block(self, block: ast.Block) -> tuple:
        return tuple(self._compile_stmt(s) for s in block.statements)

    def _compile_stmt(self, stmt: object) -> Callable:
        if isinstance(stmt, ast.Block):
            body = self._compile_block(stmt)

            def run_block(ctx, mask, _body=body):
                m = _enter(ctx, mask)
                if m is None:
                    return
                for s in _body:
                    s(ctx, m)

            return run_block
        if isinstance(stmt, ast.Decl):
            return self._compile_decl(stmt)
        if isinstance(stmt, ast.Assign):
            return self._compile_assign(stmt)
        if isinstance(stmt, ast.If):
            return self._compile_if(stmt)
        if isinstance(stmt, ast.For):
            return self._compile_for(stmt)
        if isinstance(stmt, ast.While):
            return self._compile_while(stmt)
        if isinstance(stmt, ast.Return):

            def run_return(ctx, mask):
                m = _enter(ctx, mask)
                if m is None:
                    return
                ctx.ret = ctx.ret | m
                ctx.flow_clean = False

            return run_return
        if isinstance(stmt, ast.Break):
            if self._loop_depth == 0:
                # A loop-less break escapes the scalar engine as a raw
                # signal; only the scalar path reproduces that.
                raise LockstepUnsupported("break-outside-loop")

            def run_break(ctx, mask):
                m = _enter(ctx, mask)
                if m is None:
                    return
                ctx.brk = ctx.brk | m
                ctx.flow_clean = False

            return run_break
        if isinstance(stmt, ast.Continue):
            if self._loop_depth == 0:
                raise LockstepUnsupported("continue-outside-loop")

            def run_continue(ctx, mask):
                m = _enter(ctx, mask)
                if m is None:
                    return
                ctx.cnt = ctx.cnt | m
                ctx.flow_clean = False

            return run_continue
        if isinstance(stmt, ast.ExprStmt):
            expr = self._compile_expr(stmt.expr, result_used=False)

            def run_expr(ctx, mask, _expr=expr):
                m = _enter(ctx, mask)
                if m is None:
                    return
                _expr(ctx, m)

            return run_expr
        raise LockstepUnsupported(f"statement:{type(stmt).__name__}")

    def _compile_decl(self, stmt: ast.Decl) -> Callable:
        name = stmt.name
        if name in self.local_arrays:
            size_fn = self._compile_expr(stmt.init.args[0])

            def run_local_array(ctx, mask, _name=name, _size_fn=size_fn):
                m = _enter(ctx, mask)
                if m is None:
                    return
                size = _uniform_int(_size_fn(ctx, m), m)
                old = ctx.lane_mats.get(_name)
                if m.all() or old is None or old.shape[1] != size:
                    # Fresh zero rows for every lane we can see; lanes outside
                    # the mask (only possible when old is unusable) count as
                    # undefined until they execute a declaration themselves.
                    ctx.lane_mats[_name] = np.zeros((ctx.n, size), dtype=np.float64)
                    if m.all():
                        ctx.partial.pop(_name, None)
                    else:
                        ctx.partial[_name] = m.copy()
                    return
                mat = old.copy()
                mat[m] = 0.0
                ctx.lane_mats[_name] = mat
                p = ctx.partial.get(_name)
                if p is not None:
                    merged = p | m
                    if merged.all():
                        ctx.partial.pop(_name, None)
                    else:
                        ctx.partial[_name] = merged

            return run_local_array
        init_fn = self._compile_expr(stmt.init) if stmt.init is not None else None
        coerce_int = _is_int_decl(stmt.type)

        def run_decl(ctx, mask, _name=name, _init=init_fn, _int=coerce_int):
            m = _enter(ctx, mask)
            if m is None:
                return
            value = _init(ctx, m) if _init is not None else 0
            if _int and not isinstance(value, np.ndarray):
                try:
                    value = int(value)  # matches the scalar int() truncation
                except (ValueError, OverflowError) as exc:  # NaN / inf init
                    raise LockstepHazard("bad-int-init") from exc
            elif _int and value.dtype.kind == "f":
                checked = value[m]
                if not np.all(np.isfinite(checked)):
                    raise LockstepHazard("bad-int-init")
                if np.any(np.abs(checked) >= 2.0 ** 63):
                    # int(v) in the scalar engine is exact beyond int64;
                    # astype would wrap silently.
                    raise LockstepHazard("int-overflow")
                # Unobserved (inactive/undefined) lanes may hold garbage:
                # neutralize it so the cast below stays well-defined.
                cleaned = np.where(
                    np.isfinite(value) & (np.abs(value) < 2.0 ** 63), value, 0.0
                )
                value = np.trunc(cleaned).astype(np.int64)
            _store_var(ctx, _name, value, m)

        return run_decl

    def _compile_assign(self, stmt: ast.Assign) -> Callable:
        if stmt.op not in ("=", "+=", "-=", "*=", "/=", "%="):
            raise LockstepUnsupported(f"assign-op:{stmt.op}")
        value_fn = self._compile_expr(stmt.value)
        target = stmt.target
        if isinstance(target, ast.Var):
            name = target.name
            op = stmt.op

            def run_assign_var(ctx, mask, _name=name, _op=op, _value=value_fn):
                m = _enter(ctx, mask)
                if m is None:
                    return
                value = _value(ctx, m)
                if _op != "=":
                    base = _read_for_update(ctx, _name, m)
                    value = _apply_op_value(_op[0], base, value, m)
                _store_var(ctx, _name, value, m)

            return run_assign_var
        if isinstance(target, ast.Index):
            return self._compile_scatter(target, stmt.op, value_fn)
        raise LockstepUnsupported("assign-target")

    def _compile_scatter(self, target: ast.Index, op: str, value_fn: Callable) -> Callable:
        if not isinstance(target.base, ast.Var):
            raise LockstepUnsupported("nested-index")
        name = target.base.name
        idx_fn = self._compile_expr(target.index)
        if name in self.pointer_params:
            safe_candidate = name in self.safe_candidates

            def run_scatter(ctx, mask, _name=name, _op=op, _value=value_fn, _idx=idx_fn,
                            _safe=safe_candidate):
                m = _enter(ctx, mask)
                if m is None:
                    return
                value = _value(ctx, m)  # scalar evaluates value before the index
                arr = ctx.buffers[_name]
                sel = _compressed_indices(_idx(ctx, m), m, arr.size)
                if _safe and _name in ctx.safe_buffers:
                    # Statically proven race-free under this launch: skip the
                    # writer/reader lane tracking, keep the snapshot and the
                    # bounds/range checks (OOB and store-range hazards are
                    # verdicts the static pass does not cover here).
                    _snapshot_only(ctx, arr)
                    writers = None
                else:
                    writers = _prepare_write(ctx, arr)
                    lanes = ctx.lane_ids[m]
                    _check_write_clean(writers, sel, lanes)
                    if _has_duplicates(sel):
                        raise LockstepHazard("duplicate-scatter")
                    _check_no_foreign_readers(ctx, arr, sel, lanes)
                vals = value[m] if isinstance(value, np.ndarray) else value
                try:
                    if _op == "=":
                        _check_store_range(arr, vals)
                        arr[sel] = vals
                    else:
                        updated = _apply_op_buffer(_op[0], arr[sel], vals)
                        _check_store_range(arr, updated)
                        arr[sel] = updated
                except (OverflowError, ValueError) as exc:
                    raise LockstepHazard("bad-store") from exc
                if writers is not None:
                    writers[sel] = lanes

            return run_scatter
        if name in self.local_arrays:

            def run_scatter_local(ctx, mask, _name=name, _op=op, _value=value_fn, _idx=idx_fn):
                m = _enter(ctx, mask)
                if m is None:
                    return
                value = _value(ctx, m)
                mat = ctx.lane_mats.get(_name)
                if mat is None:
                    raise LockstepHazard("undefined-local-array")
                _check_defined(ctx, _name, m)
                sel = _compressed_indices(_idx(ctx, m), m, mat.shape[1])
                lanes = ctx.lane_ids[m]
                vals = value[m] if isinstance(value, np.ndarray) else value
                if _op == "=":
                    mat[lanes, sel] = vals
                else:
                    mat[lanes, sel] = _apply_op_buffer(_op[0], mat[lanes, sel], vals)

            return run_scatter_local
        # Indexing a scalar local raises in the scalar interpreter; keep the
        # whole kernel on the scalar path so it raises identically.
        raise LockstepUnsupported("index-into-non-buffer")

    def _compile_if(self, stmt: ast.If) -> Callable:
        cond_fn = self._compile_cond(stmt.cond)
        then_body = self._compile_block(stmt.then)
        else_body = self._compile_block(stmt.orelse) if stmt.orelse is not None else None

        def run_if(ctx, mask, _cond=cond_fn, _then=then_body, _else=else_body):
            m = _enter(ctx, mask)
            if m is None:
                return
            truth = _cond(ctx, m)
            if not isinstance(truth, np.ndarray):
                branch = _then if truth else _else
                if branch is not None:
                    for s in branch:
                        s(ctx, m)
                return
            taken = m & truth
            if taken.any():
                for s in _then:
                    s(ctx, taken)
            if _else is not None:
                other = m & ~truth
                if other.any():
                    for s in _else:
                        s(ctx, other)

        return run_if

    def _compile_while(self, stmt: ast.While) -> Callable:
        cond_fn = self._compile_cond(stmt.cond)
        self._loop_depth += 1
        try:
            body = self._compile_block(stmt.body)
        finally:
            self._loop_depth -= 1
        return _make_loop(None, cond_fn, None, body, _breaks_directly(stmt.body))

    def _compile_for(self, stmt: ast.For) -> Callable:
        init_fn = self._compile_stmt(stmt.init) if stmt.init is not None else None
        cond_fn = self._compile_cond(stmt.cond) if stmt.cond is not None else None
        update_fn = self._compile_stmt(stmt.update) if stmt.update is not None else None
        self._loop_depth += 1
        try:
            body = self._compile_block(stmt.body)
        finally:
            self._loop_depth -= 1
        return _make_loop(init_fn, cond_fn, update_fn, body, _breaks_directly(stmt.body))

    # -- expressions --------------------------------------------------------
    def _compile_expr(self, node: object, result_used: bool = True) -> Callable:
        if isinstance(node, ast.Num):
            value = node.value

            def run_num(ctx, m, _v=value):
                ctx.budget -= 1
                return _v

            return run_num
        if isinstance(node, ast.Var):
            name = node.name
            if name in self.pointer_params or name in self.local_arrays or name in _BUILTIN_DIMS:
                # Bare pointer/aggregate references (aliasing, Dim3 values)
                # are outside the lane-value model.
                raise LockstepUnsupported("bare-aggregate-var")

            def run_var(ctx, m, _name=name):
                ctx.budget -= 1
                try:
                    value = ctx.env[_name]
                except KeyError:
                    # Unknown identifier (or a builtin fallback): the scalar
                    # path raises / resolves it authoritatively.
                    raise LockstepHazard("unknown-identifier") from None
                _check_defined(ctx, _name, m)
                return value

            return run_var
        if isinstance(node, ast.Member):
            attr = _MEMBER_ATTRS.get((node.base, node.field))
            if attr is None:
                raise LockstepUnsupported("member-access")

            def run_member(ctx, m, _attr=attr):
                ctx.budget -= 1
                return getattr(ctx, _attr)

            return run_member
        if isinstance(node, ast.Index):
            return self._compile_gather(node)
        if self._is_boolean_node(node):
            # Comparisons and logical ops: compile to the mask form and
            # convert to the scalar interpreter's 0/1 integers only when the
            # *value* is demanded (conditions consume the mask directly).
            cond_fn = self._compile_cond(node)

            def run_cond_value(ctx, m, _cond=cond_fn):
                truth = _cond(ctx, m)
                if isinstance(truth, np.ndarray):
                    return truth.astype(np.int64)
                return 1 if truth else 0

            return run_cond_value
        if isinstance(node, ast.Unary):
            return self._compile_unary(node)
        if isinstance(node, ast.Binary):
            return self._compile_binary(node)
        if isinstance(node, ast.Ternary):
            return self._compile_ternary(node)
        if isinstance(node, ast.Call):
            return self._compile_call(node, result_used)
        raise LockstepUnsupported(f"expression:{type(node).__name__}")

    @staticmethod
    def _is_boolean_node(node: object) -> bool:
        if isinstance(node, ast.Binary) and (node.op in _CMP_UFUNCS or node.op in ("&&", "||")):
            return True
        return isinstance(node, ast.Unary) and node.op == "!"

    def _compile_cond(self, node: object) -> Callable:
        """Compile an expression to per-lane truthiness: a Python bool for
        uniform values or a bool lane array — no int64 round trip."""
        if isinstance(node, ast.Binary) and node.op in _CMP_UFUNCS:
            left_fn = self._compile_expr(node.left)
            right_fn = self._compile_expr(node.right)
            cmp = _CMP_UFUNCS[node.op]

            def run_cmp(ctx, m, _left=left_fn, _right=right_fn, _cmp=cmp):
                ctx.budget -= 1
                a = _left(ctx, m)
                b = _right(ctx, m)
                if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
                    try:
                        return _cmp(a, b)
                    except Exception as exc:  # e.g. huge-Python-int operand
                        raise LockstepHazard(f"compare:{type(exc).__name__}") from exc
                return bool(_cmp(a, b))

            return run_cmp
        if isinstance(node, ast.Binary) and node.op in ("&&", "||"):
            left_fn = self._compile_cond(node.left)
            right_fn = self._compile_cond(node.right)
            is_and = node.op == "&&"

            def run_logical(ctx, m, _left=left_fn, _right=right_fn, _and=is_and):
                ctx.budget -= 1
                lt = _left(ctx, m)
                if not isinstance(lt, np.ndarray):
                    if _and and not lt:
                        return False
                    if not _and and lt:
                        return True
                    return _right(ctx, m)
                # Per-lane short circuit: the right side runs only for lanes
                # the left side did not decide (its side effects and hazards
                # stay correctly masked).
                m2 = (m & lt) if _and else (m & ~lt)
                if not m2.any():
                    return lt
                rt = _right(ctx, m2)
                if _and:
                    return lt & rt
                return lt | rt

            return run_logical
        if isinstance(node, ast.Unary) and node.op == "!":
            inner = self._compile_cond(node.operand)

            def run_not(ctx, m, _inner=inner):
                ctx.budget -= 1
                truth = _inner(ctx, m)
                if isinstance(truth, np.ndarray):
                    return ~truth
                return not truth

            return run_not
        expr_fn = self._compile_expr(node)

        def run_truthy(ctx, m, _expr=expr_fn):
            return _truthy_lanes(_expr(ctx, m))

        return run_truthy

    def _compile_gather(self, node: ast.Index) -> Callable:
        if not isinstance(node.base, ast.Var):
            raise LockstepUnsupported("nested-index")
        name = node.base.name
        idx_fn = self._compile_expr(node.index)
        if name in self.pointer_params:
            track_readers = name in self.written_params
            safe_candidate = name in self.safe_candidates

            def run_gather(ctx, m, _name=name, _idx=idx_fn, _track=track_readers,
                           _safe=safe_candidate):
                ctx.budget -= 1
                arr = ctx.buffers[_name]
                idx = _idx(ctx, m)
                track = _track and not (_safe and _name in ctx.safe_buffers)
                if not isinstance(idx, np.ndarray):
                    try:
                        i = int(idx)
                    except (ValueError, OverflowError) as exc:
                        raise LockstepHazard("bad-index") from exc
                    if i < 0 or i >= arr.size:
                        raise LockstepHazard("out-of-bounds")
                    writers = ctx.writers.get(id(arr))
                    if writers is not None:
                        w = writers[i]
                        if w != -1 and not bool(np.all(ctx.lane_ids[m] == w)):
                            raise LockstepHazard("cross-lane-read")
                    if track:
                        _record_readers(ctx, arr, m, i)
                    return arr[i].item()  # matches the scalar .item() promotion
                sel = _compressed_indices(idx, m, arr.size)
                _check_read_clean(ctx, arr, sel, m)
                if track:
                    _record_readers(ctx, arr, m, sel)
                out = np.zeros(ctx.n, dtype=_gather_dtype(arr))
                out[m] = arr[sel]
                return out

            return run_gather
        if name in self.local_arrays:

            def run_gather_local(ctx, m, _name=name, _idx=idx_fn):
                ctx.budget -= 1
                mat = ctx.lane_mats.get(_name)
                if mat is None:
                    raise LockstepHazard("undefined-local-array")
                _check_defined(ctx, _name, m)
                sel = _compressed_indices(_idx(ctx, m), m, mat.shape[1])
                out = np.zeros(ctx.n, dtype=np.float64)
                out[m] = mat[ctx.lane_ids[m], sel]
                return out

            return run_gather_local
        raise LockstepUnsupported("index-into-non-buffer")

    def _compile_unary(self, node: ast.Unary) -> Callable:
        if node.op in ("pre++", "pre--"):
            if not isinstance(node.operand, ast.Var):
                raise LockstepUnsupported("pre-increment-target")
            name = node.operand.name
            if name in self.pointer_params or name in self.local_arrays:
                raise LockstepUnsupported("pre-increment-target")
            delta = 1 if node.op == "pre++" else -1

            def run_preinc(ctx, m, _name=name, _delta=delta):
                ctx.budget -= 1
                base = _read_for_update(ctx, _name, m)
                value = _apply_op_value("+", base, _delta, m)
                _store_var(ctx, _name, value, m)
                return value

            return run_preinc
        operand_fn = self._compile_expr(node.operand)
        op = node.op
        if op not in ("-", "+"):  # "!" went through _compile_cond
            raise LockstepUnsupported(f"unary:{op}")

        def run_unary(ctx, m, _op=op, _operand=operand_fn):
            ctx.budget -= 1
            value = _operand(ctx, m)
            if _op == "+":
                return value
            if isinstance(value, np.ndarray):
                if value.dtype.kind in "iub" and np.any(value == _INT64_MIN):
                    raise LockstepHazard("int-overflow")
                return np.negative(value)
            return -value

        return run_unary

    def _compile_binary(self, node: ast.Binary) -> Callable:
        # Comparisons and logical ops were routed through _compile_cond.
        left_fn = self._compile_expr(node.left)
        right_fn = self._compile_expr(node.right)
        op = node.op
        if op not in ("+", "-", "*", "/", "%"):
            raise LockstepUnsupported(f"operator:{op}")

        def run_binary(ctx, m, _op=op, _left=left_fn, _right=right_fn):
            ctx.budget -= 1
            return _binary_value(_op, _left(ctx, m), _right(ctx, m), m)

        return run_binary

    def _compile_ternary(self, node: ast.Ternary) -> Callable:
        cond_fn = self._compile_cond(node.cond)
        then_fn = self._compile_expr(node.then)
        else_fn = self._compile_expr(node.orelse)

        def run_ternary(ctx, m, _cond=cond_fn, _then=then_fn, _else=else_fn):
            ctx.budget -= 1
            truth = _cond(ctx, m)
            if not isinstance(truth, np.ndarray):
                return _then(ctx, m) if truth else _else(ctx, m)
            m_then = m & truth
            m_else = m & ~truth
            if not m_else.any():
                return _then(ctx, m_then)
            if not m_then.any():
                return _else(ctx, m_else)
            tv = _then(ctx, m_then)
            fv = _else(ctx, m_else)
            return _merge_masked(tv, fv, truth)

        return run_ternary

    def _compile_call(self, node: ast.Call, result_used: bool) -> Callable:
        name = node.name
        if name == "__syncthreads":
            # Lockstep executes every statement for all live lanes before the
            # next one: the barrier is trivially satisfied (and the scalar
            # interpreter also treats it as a no-op returning 0).
            def run_sync(ctx, m):
                ctx.budget -= 1
                return 0

            return run_sync
        if name == "atomicAdd":
            return self._compile_atomic_add(node, result_used)
        if name == "__local_array__":
            # Only valid as a whole Decl initializer (handled there).
            raise LockstepUnsupported("local-array-expression")
        handler = _MATH_CALLS.get(name)
        if handler is None:
            raise LockstepUnsupported(f"call:{name}")
        arg_fns = tuple(self._compile_expr(arg) for arg in node.args)
        py_func, min_args, max_args = handler
        if not (min_args <= len(arg_fns) <= max_args):
            raise LockstepUnsupported(f"call-arity:{name}")

        def run_math(ctx, m, _name=name, _args=arg_fns, _py=py_func):
            ctx.budget -= 1
            values = [fn(ctx, m) for fn in _args]
            if not any(isinstance(v, np.ndarray) for v in values):
                return _py_math(_py, values)
            return _VECTOR_MATH[_name](values, m)

        return run_math

    def _compile_atomic_add(self, node: ast.Call, result_used: bool) -> Callable:
        if len(node.args) != 2:
            raise LockstepUnsupported("atomicAdd-arity")
        target = node.args[0]
        if isinstance(target, ast.Unary):  # &x[i] parses as Unary
            target = target.operand
        value_fn = self._compile_expr(node.args[1])
        if isinstance(target, ast.Index):
            if not isinstance(target.base, ast.Var):
                raise LockstepUnsupported("atomicAdd-target")
            name = target.base.name
            idx_fn = self._compile_expr(target.index)
        elif isinstance(target, ast.Var):
            name = target.name
            idx_fn = None
        else:
            raise LockstepUnsupported("atomicAdd-target")
        if name in self.local_arrays:
            if idx_fn is None:
                raise LockstepUnsupported("atomicAdd-target")

            def run_atomic_local(ctx, m, _name=name, _idx=idx_fn, _value=value_fn,
                                 _used=result_used):
                ctx.budget -= 1
                value = _value(ctx, m)
                mat = ctx.lane_mats.get(_name)
                if mat is None:
                    raise LockstepHazard("undefined-local-array")
                _check_defined(ctx, _name, m)
                sel = _compressed_indices(_idx(ctx, m), m, mat.shape[1])
                lanes = ctx.lane_ids[m]
                vals = value[m] if isinstance(value, np.ndarray) else value
                mat[lanes, sel] = mat[lanes, sel] + vals
                if not _used:
                    return 0
                out = np.zeros(ctx.n, dtype=np.float64)
                out[m] = mat[lanes, sel]
                return out

            return run_atomic_local
        if name not in self.pointer_params:
            raise LockstepUnsupported("atomicAdd-target")

        def run_atomic(ctx, m, _name=name, _idx=idx_fn, _value=value_fn, _used=result_used):
            ctx.budget -= 1
            value = _value(ctx, m)  # scalar evaluates the value first
            arr = ctx.buffers[_name]
            if arr.dtype.kind != "f" or arr.dtype.itemsize != 8:
                # Accumulation-order/casting subtleties on non-float64
                # buffers: let the scalar path decide.
                raise LockstepHazard("atomic-dtype")
            idx = _idx(ctx, m) if _idx is not None else 0
            sel = _compressed_indices(idx, m, arr.size)
            writers = _prepare_write(ctx, arr)
            lanes = ctx.lane_ids[m]
            _check_write_clean(writers, sel, lanes)
            _check_no_foreign_readers(ctx, arr, sel, lanes)
            duplicated = _has_duplicates(sel)
            vals = value[m] if isinstance(value, np.ndarray) else value
            # np.add.at applies the additions in lane order — exactly the
            # scalar thread order for a single statement instance.
            np.add.at(arr, sel, vals)
            writers[sel] = _MANY_WRITERS if duplicated else lanes
            if not _used:
                return 0
            if duplicated:
                # Sequential threads observe distinct intermediate sums.
                raise LockstepHazard("atomic-result-order")
            out = np.zeros(ctx.n, dtype=np.float64)
            out[m] = arr[sel]
            return out

        return run_atomic


# ---------------------------------------------------------------------------
# loop runtime (shared by for/while)
# ---------------------------------------------------------------------------

def _breaks_directly(block: ast.Block) -> bool:
    """Does this loop body contain break/continue bound to *this* loop?
    (Nested loops own their break/continue; return is handled globally.)"""
    for stmt in block.statements:
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return True
        if isinstance(stmt, ast.Block) and _breaks_directly(stmt):
            return True
        if isinstance(stmt, ast.If):
            if _breaks_directly(stmt.then):
                return True
            if stmt.orelse is not None and _breaks_directly(stmt.orelse):
                return True
    return False


def _make_loop(init_fn, cond_fn, update_fn, body, needs_frames: bool) -> Callable:
    def run_loop(ctx, mask):
        m = _enter(ctx, mask)
        if m is None:
            return
        if init_fn is not None:
            init_fn(ctx, m)
            if not ctx.flow_clean:
                m = m & ~ctx.ret
                if not m.any():
                    return
        loop = m
        while True:
            ctx.budget -= 1
            if ctx.budget <= 0:
                raise LockstepHazard("step-budget")
            if cond_fn is not None:
                truth = cond_fn(ctx, loop)
                if isinstance(truth, np.ndarray):
                    loop = loop & truth
                    if not loop.any():
                        break
                elif not truth:
                    break
            if needs_frames:
                saved_brk, saved_cnt = ctx.brk, ctx.cnt
                ctx.brk = _zeros_mask(ctx)
                ctx.cnt = _zeros_mask(ctx)
                for s in body:
                    s(ctx, loop)
                broke = ctx.brk
                ctx.brk, ctx.cnt = saved_brk, saved_cnt
                if broke.any() or ctx.ret.any():
                    loop = loop & ~broke
                    loop &= ~ctx.ret
                ctx.flow_clean = not (ctx.ret.any() or ctx.brk.any() or ctx.cnt.any())
                if not loop.any():
                    break
            else:
                # No break/continue can target this loop: the only flow
                # change a body iteration can cause is a return.
                for s in body:
                    s(ctx, loop)
                if not ctx.flow_clean:
                    loop = loop & ~ctx.ret
                    if not loop.any():
                        break
            if update_fn is not None:
                # Continue lanes rejoin here (a for-loop continue still runs
                # the update, matching the scalar interpreter).
                update_fn(ctx, loop)

    return run_loop


# ---------------------------------------------------------------------------
# env store / defined-mask tracking
# ---------------------------------------------------------------------------

_MISSING = object()


def _check_defined(ctx: _Ctx, name: str, m: np.ndarray) -> None:
    partial = ctx.partial.get(name)
    if partial is None or partial is m:
        # Identity fast path: masks are never mutated in place, and inside a
        # loop the same mask object recurs every iteration.
        return
    if (m & ~partial).any():
        # Some active lane never executed the defining statement; the scalar
        # interpreter raises "unknown identifier" for it.
        raise LockstepHazard("partially-defined-read")


def _covers_all(ctx: _Ctx, m: np.ndarray) -> bool:
    return m is ctx.full or bool(m.all())


def _read_for_update(ctx: _Ctx, name: str, m: np.ndarray) -> Any:
    """Current value for a compound assignment / pre-increment.

    Matches the scalar `env.get(name, 0)`: lanes that never executed a
    defining statement contribute 0.  Partially-defined values only
    materialize to arrays when an active lane actually needs the default.
    """
    old = ctx.env.get(name, _MISSING)
    if old is _MISSING:
        return 0
    partial = ctx.partial.get(name)
    if partial is None or partial is m or not (m & ~partial).any():
        return old
    try:
        return np.where(partial, old, 0)
    except OverflowError as exc:
        raise LockstepHazard("int-overflow") from exc


def _store_var(ctx: _Ctx, name: str, value: Any, m: np.ndarray) -> None:
    """Store ``value`` for the lanes in ``m``.

    Lanes outside ``m`` keep their previous value — or stay *undefined*,
    which reads (hazard) and compound updates (0 default) handle lazily, so
    uniform Python scalars stay uniform as long as every defined lane is
    written together (the masked-loop-counter fast path)."""
    if _covers_all(ctx, m):
        ctx.env[name] = value
        ctx.partial.pop(name, None)
        return
    old = ctx.env.get(name, _MISSING)
    if old is _MISSING:
        ctx.env[name] = value
        ctx.partial[name] = m.copy()
        return
    partial = ctx.partial.get(name)
    if partial is not None and (partial is m or not (partial & ~m).any()):
        # The store covers every defined lane: no merge needed, a uniform
        # value stays uniform, and the mask object itself becomes the
        # defined set (enabling the identity fast paths above; masks are
        # never mutated in place).  m.all() is known False here.
        ctx.env[name] = value
        ctx.partial[name] = m
        return
    if partial is not None and not isinstance(old, np.ndarray):
        # Materialize the uniform-but-partial old value before merging
        # (undefined lanes hold the 0 compound-default).
        try:
            old = np.where(partial, old, 0)
        except OverflowError as exc:
            raise LockstepHazard("int-overflow") from exc
    ctx.env[name] = _merge_masked(value, old, m)
    if partial is not None:
        merged = partial | m
        if merged.all():
            ctx.partial.pop(name, None)
        else:
            ctx.partial[name] = merged


# ---------------------------------------------------------------------------
# math tables
# ---------------------------------------------------------------------------

_MATH_CALLS: dict[str, tuple[Callable, int, int]] = {
    "sqrt": (math.sqrt, 1, 1), "sqrtf": (math.sqrt, 1, 1),
    "fabs": (abs, 1, 1), "abs": (abs, 1, 1), "fabsf": (abs, 1, 1),
    "min": (min, 2, 8), "max": (max, 2, 8),
    "fmin": (min, 2, 8), "fmax": (max, 2, 8),
    "exp": (math.exp, 1, 1), "pow": (math.pow, 2, 2),
}


def _vector_abs(values: list, m: np.ndarray) -> Any:
    x = values[0]
    if isinstance(x, np.ndarray) and x.dtype.kind in "iub" and np.any(x == _INT64_MIN):
        raise LockstepHazard("int-overflow")
    return np.abs(x)


_VECTOR_MATH: dict[str, Callable[[list, np.ndarray], Any]] = {
    "sqrt": lambda v, m: _vector_sqrt(v[0], m),
    "sqrtf": lambda v, m: _vector_sqrt(v[0], m),
    "fabs": _vector_abs, "abs": _vector_abs, "fabsf": _vector_abs,
    "min": lambda v, m: _vector_minmax(v, m, maximum=False),
    "max": lambda v, m: _vector_minmax(v, m, maximum=True),
    "fmin": lambda v, m: _vector_minmax(v, m, maximum=False),
    "fmax": lambda v, m: _vector_minmax(v, m, maximum=True),
    "exp": lambda v, m: _vector_exp(v[0], m),
    "pow": lambda v, m: _vector_pow(v[0], v[1], m),
}


# ---------------------------------------------------------------------------
# the compiled program
# ---------------------------------------------------------------------------

class LockstepProgram:
    """A kernel body compiled to lockstep closures, ready to launch."""

    def __init__(self, definition: ast.KernelDef, body: tuple, static_report=None):
        self._definition = definition
        self._body = body
        self._pointer_names = tuple(p.name for p in definition.params if p.is_pointer)
        #: :class:`repro.sandbox.cuda_c.static.StaticReport` computed at
        #: compile time, or ``None`` if the analysis errored out.
        self.static_report = static_report
        self._safe_cache: dict[tuple, frozenset] = {}

    def _safe_buffers_for(self, grid, block) -> frozenset:
        """Race-safe buffers whose proof holds for this launch geometry."""
        if self.static_report is None or not _ELISION_ENABLED:
            return frozenset()
        key = (grid.x, grid.y, grid.z, block.x, block.y, block.z)
        cached = self._safe_cache.get(key)
        if cached is None:
            cached = active_race_safe(
                self.static_report,
                (grid.x, grid.y, grid.z),
                (block.x, block.y, block.z),
            )
            self._safe_cache[key] = cached
        return cached

    def run(self, grid, block, bound: dict, budget: int) -> None:
        """Execute one launch over pre-coerced arguments ``bound``.

        Raises :class:`LockstepHazard` — with every mutated buffer restored
        to its pre-launch bytes — whenever the launch cannot be proven
        equivalent to the sequential scalar sweep.
        """
        buffers = {}
        arrays = []
        for name in self._pointer_names:
            arr = bound[name]
            if not isinstance(arr, np.ndarray) or arr.ndim != 1 or not _buffer_ok(arr):
                raise LockstepHazard("buffer-dtype")
            buffers[name] = arr
            arrays.append(arr)
        for i in range(len(arrays)):
            for j in range(i + 1, len(arrays)):
                if np.shares_memory(arrays[i], arrays[j]):
                    raise LockstepHazard("aliased-buffers")

        geom = _lane_geometry(grid, block)
        ctx = _Ctx()
        ctx.n = geom["lane_ids"].size
        ctx.lane_ids = geom["lane_ids"]
        ctx.full = geom["full"]
        ctx.tix, ctx.tiy, ctx.tiz = geom["tix"], geom["tiy"], geom["tiz"]
        ctx.bix, ctx.biy, ctx.biz = geom["bix"], geom["biy"], geom["biz"]
        ctx.bdx, ctx.bdy, ctx.bdz = block.x, block.y, block.z
        ctx.gdx, ctx.gdy, ctx.gdz = grid.x, grid.y, grid.z
        ctx.env = {name: value for name, value in bound.items() if name not in buffers}
        ctx.partial = {}
        ctx.buffers = buffers
        ctx.lane_mats = {}
        ctx.writers = {}
        ctx.readers = {}
        ctx.snapshots = {}
        ctx.safe_buffers = self._safe_buffers_for(grid, block)
        if ctx.safe_buffers:
            _note("launches_static_elided")
        ctx.ret = _zeros_mask(ctx)
        ctx.brk = _zeros_mask(ctx)
        ctx.cnt = _zeros_mask(ctx)
        ctx.flow_clean = True
        ctx.budget = budget

        with np.errstate(all="ignore"):
            try:
                for stmt in self._body:
                    stmt(ctx, ctx.full)
            except LockstepHazard:
                ctx.restore_buffers()
                raise
            except Exception as exc:  # defensive: never let the fast path
                ctx.restore_buffers()  # produce behavior of its own
                raise LockstepHazard(f"unexpected:{type(exc).__name__}") from exc


def try_compile(definition: ast.KernelDef) -> LockstepProgram | None:
    """Compile a kernel for lockstep execution, or ``None`` (scalar only)."""
    try:
        report = analyze_kernel(definition)
    except Exception:
        # The static pass is advisory: an analysis bug must never take down
        # compilation, it only costs the elision fast path.
        report = None
    candidates = frozenset(report.race_safe) if report is not None else frozenset()
    try:
        compiler = _Compiler(definition, safe_candidates=candidates)
    except LockstepUnsupported as exc:
        _note("kernels_scalar_only")
        _note(f"unsupported[{exc}]")
        return None
    _note("kernels_lockstep")
    return LockstepProgram(definition, compiler.body, static_report=report)
