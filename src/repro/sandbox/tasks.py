"""Canonical evaluation tasks for executable (Python) suggestions.

A :class:`SandboxTask` fixes, for each kernel, the concrete arguments a
candidate function is called with and the oracle output it must reproduce.
The argument sets use the *simple* form of each kernel (``y = A x`` rather
than the full ``alpha``/``beta`` BLAS form) because that is the form the
prompt "``<kernel>`` ``<model>`` ``def``" asks for and the form the
templates and real Copilot suggestions produce.

Problem sizes are deliberately small: the evaluation measures correctness,
not throughput, and the pyCUDA/cuPy suggestions run on an interpreted
simulated device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.kernels.jacobi import jacobi3d_step
from repro.kernels.sparse import poisson_2d

__all__ = ["SandboxTask", "get_task", "register_task_builder", "TASK_SEED"]

#: Base seed for the sandbox problem data (start of the paper's data window).
TASK_SEED = 20230414


@dataclass(frozen=True)
class SandboxTask:
    """A concrete call the sandbox makes against a candidate function."""

    kernel: str
    #: Positional arguments handed to the candidate callable.
    args: tuple
    #: Oracle output the candidate must reproduce.
    expected: np.ndarray
    #: Relative tolerance for the comparison.
    rtol: float = 1e-8
    #: Absolute tolerance for the comparison.
    atol: float = 1e-10

    def fresh_args(self) -> tuple:
        """Copies of the arguments, safe to hand to untrusted code."""
        out = []
        for arg in self.args:
            out.append(arg.copy() if isinstance(arg, np.ndarray) else arg)
        return tuple(out)


def _rng(kernel: str) -> np.random.Generator:
    return np.random.default_rng([TASK_SEED, sum(ord(c) for c in kernel)])


_BUILDERS: dict[str, Callable[[], SandboxTask]] = {}


def _register(name: str) -> Callable[[Callable[[], SandboxTask]], Callable[[], SandboxTask]]:
    def wrap(func: Callable[[], SandboxTask]) -> Callable[[], SandboxTask]:
        _BUILDERS[name] = func
        return func

    return wrap


@_register("axpy")
def _axpy_task() -> SandboxTask:
    rng = _rng("axpy")
    n = 64
    a = 1.5
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    return SandboxTask(kernel="axpy", args=(a, x, y), expected=a * x + y)


@_register("gemv")
def _gemv_task() -> SandboxTask:
    rng = _rng("gemv")
    m, n = 12, 9
    a = rng.standard_normal((m, n))
    x = rng.standard_normal(n)
    return SandboxTask(kernel="gemv", args=(a, x), expected=a @ x)


@_register("gemm")
def _gemm_task() -> SandboxTask:
    rng = _rng("gemm")
    m, k, n = 8, 6, 7
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    return SandboxTask(kernel="gemm", args=(a, b), expected=a @ b)


@_register("spmv")
def _spmv_task() -> SandboxTask:
    rng = _rng("spmv")
    matrix = poisson_2d(4)  # 16 x 16, 64 non-zeros
    x = rng.standard_normal(matrix.n_cols)
    expected = matrix.matvec(x)
    return SandboxTask(
        kernel="spmv",
        args=(matrix.indptr.copy(), matrix.indices.copy(), matrix.data.copy(), x),
        expected=expected,
    )


@_register("jacobi")
def _jacobi_task() -> SandboxTask:
    rng = _rng("jacobi")
    n = 6
    u = rng.standard_normal((n, n, n))
    expected = jacobi3d_step(u, None, 1.0)
    return SandboxTask(kernel="jacobi", args=(u,), expected=expected)


@_register("scan")
def _scan_task() -> SandboxTask:
    # Extension family (see repro.extensions): inclusive prefix sum.
    rng = _rng("scan")
    n = 64
    x = rng.standard_normal(n)
    return SandboxTask(kernel="scan", args=(x,), expected=np.cumsum(x))


@_register("histogram")
def _histogram_task() -> SandboxTask:
    # Extension family: bin counts from precomputed int32 bin indices (the
    # CUDA templates index the histogram buffer by a loaded integer, the
    # same access shape as spmv's col_idx).  The counts buffer is float64
    # because the lockstep engine models atomicAdd on float64 targets.
    rng = _rng("histogram")
    n, nbins = 64, 8
    bins = rng.integers(0, nbins, size=n).astype(np.int32)
    expected = np.bincount(bins, minlength=nbins).astype(np.float64)
    return SandboxTask(kernel="histogram", args=(bins, nbins), expected=expected)


@_register("cg")
def _cg_task() -> SandboxTask:
    rng = _rng("cg")
    n = 10
    m = rng.standard_normal((n, n))
    a = m @ m.T + n * np.eye(n)
    x_true = rng.standard_normal(n)
    b = a @ x_true
    return SandboxTask(kernel="cg", args=(a, b), expected=x_true, rtol=1e-5, atol=1e-6)


def register_task_builder(name: str, builder: Callable[[], SandboxTask]) -> None:
    """Register a sandbox task builder for an extension kernel (idempotent).

    Replacing an existing builder with a different one is an error: the
    task is part of the evaluation contract, and silently swapping it would
    re-score every cached verdict for the kernel.
    """
    key = name.strip().lower()
    existing = _BUILDERS.get(key)
    if existing is not None and existing is not builder:
        raise ValueError(f"kernel {key!r} already has a sandbox task builder")
    _BUILDERS[key] = builder
    _CACHE.pop(key, None)


_CACHE: dict[str, SandboxTask] = {}


def get_task(kernel: str) -> SandboxTask:
    """The (cached, deterministic) sandbox task for ``kernel``."""
    key = kernel.strip().lower()
    if key not in _BUILDERS:
        raise KeyError(f"no sandbox task for kernel {kernel!r}; known: {', '.join(_BUILDERS)}")
    if key not in _CACHE:
        _CACHE[key] = _BUILDERS[key]()
    return _CACHE[key]
