"""Restricted execution of Python suggestions against numerical oracles.

``run_python_suggestion`` executes a suggestion module with the fake GPU /
JIT runtimes installed in :data:`sys.modules`, locates the entry function for
the kernel and calls it with the canonical :class:`~repro.sandbox.tasks.SandboxTask`
arguments; ``evaluate_python_suggestion`` additionally compares the result
against the oracle.

``evaluate_python_suggestions`` (plural) is the batched entry point used by
the analyzer's cache-miss seam: each kernel's numerical oracle is set up
once per batch and the whole batch executes — in input order — inside a
single :func:`fake_runtime` context with CUDA parse/launch reuse, instead of
installing and removing the fake module stack once per suggestion.

Every module actually executed bumps a process-wide counter
(:func:`sandbox_execution_count`), which is how runners and tests assert
that warm-cache runs perform **zero** sandbox executions.
"""

from __future__ import annotations

import contextlib
import sys
import threading
import types
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

import numpy as np

from repro.analysis.pythonlang import find_entry_function
from repro.kernels.validation import compare_outputs
from repro.sandbox.tasks import SandboxTask, get_task

__all__ = [
    "ExecutionResult",
    "run_python_suggestion",
    "evaluate_python_suggestion",
    "evaluate_python_suggestions",
    "fake_runtime",
    "sandbox_execution_count",
]

#: Process-wide count of suggestion modules actually executed (monotonic;
#: callers measure deltas).  Incremented just before a module's ``exec``,
#: under a lock so thread-backend runs never drop increments.
_EXECUTION_COUNT = 0
_EXECUTION_COUNT_LOCK = threading.Lock()


def _count_execution() -> None:
    global _EXECUTION_COUNT
    with _EXECUTION_COUNT_LOCK:
        _EXECUTION_COUNT += 1


def sandbox_execution_count() -> int:
    """How many suggestion modules this process has executed so far."""
    return _EXECUTION_COUNT


@dataclass
class ExecutionResult:
    """Outcome of executing one Python suggestion."""

    passed: bool
    issues: list[str] = field(default_factory=list)
    output: Any = None
    entry_point: str | None = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.passed


def _fresh_wrapper_modules() -> dict[str, types.ModuleType]:
    """The per-suggestion fake modules (numba/cupyx wrappers).

    These are the only entries of the fake runtime built fresh for every
    serial evaluation (cupy/pycuda are real module objects shared across
    calls either way), so the batched path must rebuild exactly these
    between suggestions to keep batch results identical to serial ones even
    when a suggestion mutates its module namespace.
    """
    from repro.sandbox import fake_numba

    numba_module = types.ModuleType("numba")
    for name in fake_numba.__all__:
        setattr(numba_module, name, getattr(fake_numba, name))
    numba_cuda = types.ModuleType("numba.cuda")
    for name in ("jit", "grid", "to_device", "synchronize", "is_available"):
        setattr(numba_cuda, name, getattr(fake_numba.cuda, name))
    numba_module.cuda = fake_numba.cuda
    return {
        "numba": numba_module,
        "numba.cuda": numba_cuda,
        "cupyx": types.ModuleType("cupyx"),
    }


def _fake_module_map() -> dict[str, types.ModuleType]:
    """The sys.modules entries that stand in for the GPU / JIT stack."""
    from repro.sandbox import fake_cupy, fake_kokkos, fake_pycuda
    from repro.sandbox.fake_pycuda import autoinit, compiler, driver, gpuarray

    modules = {
        "cupy": fake_cupy,
        "pycuda": fake_pycuda,
        "pycuda.autoinit": autoinit,
        "pycuda.driver": driver,
        "pycuda.compiler": compiler,
        "pycuda.gpuarray": gpuarray,
        "pykokkos": fake_kokkos,
    }
    modules.update(_fresh_wrapper_modules())
    return modules


@contextlib.contextmanager
def fake_runtime() -> Iterator[None]:
    """Temporarily install the fake numba/cupy/pycuda modules."""
    fakes = _fake_module_map()
    saved: dict[str, types.ModuleType | None] = {}
    for name, module in fakes.items():
        saved[name] = sys.modules.get(name)
        sys.modules[name] = module
    try:
        yield
    finally:
        for name, original in saved.items():
            if original is None:
                sys.modules.pop(name, None)
            else:
                sys.modules[name] = original


def _run_in_runtime(code: str, kernel: str, task: SandboxTask) -> ExecutionResult:
    """Execute one suggestion; the fake runtime must already be installed."""
    entry = find_entry_function(code, kernel)
    if entry is None:
        return ExecutionResult(passed=False, issues=["no callable entry point for the kernel"])
    _count_execution()
    namespace: dict[str, Any] = {"__name__": "__suggestion__"}
    try:
        exec(compile(code, "<suggestion>", "exec"), namespace)  # noqa: S102 - sandboxed corpus code
    except Exception as exc:  # pragma: no cover - exercised via evaluate
        return ExecutionResult(passed=False, issues=[f"module execution failed: {exc!r}"])
    func = namespace.get(entry)
    if not callable(func):
        return ExecutionResult(passed=False, issues=[f"entry point {entry!r} is not callable"])
    try:
        output = func(*task.fresh_args())
    except Exception as exc:
        return ExecutionResult(
            passed=False, issues=[f"calling {entry}() raised {type(exc).__name__}: {exc}"],
            entry_point=entry,
        )
    return ExecutionResult(passed=True, output=output, entry_point=entry)


def run_python_suggestion(code: str, kernel: str, task: SandboxTask | None = None) -> ExecutionResult:
    """Execute ``code`` and call its entry function with the kernel's task arguments."""
    task = task or get_task(kernel)
    with fake_runtime():
        return _run_in_runtime(code, kernel, task)


def _compare_against_oracle(result: ExecutionResult, task: SandboxTask) -> ExecutionResult:
    """Judge a run's output against the task oracle (mutates ``result``)."""
    if not result.passed:
        return result
    output = result.output
    if output is None:
        result.passed = False
        result.issues.append("function returned None")
        return result
    if hasattr(output, "get") and not isinstance(output, (dict, np.ndarray)):
        # pyCUDA GPUArray-style objects copy back via .get().
        try:
            output = output.get()
        except Exception:  # pragma: no cover - defensive
            pass
    comparison = compare_outputs(output, task.expected, rtol=task.rtol, atol=task.atol)
    result.passed = comparison.passed
    result.output = output
    if not comparison.passed:
        result.issues.append(f"numerical mismatch: {comparison.message}")
    return result


def evaluate_python_suggestion(code: str, kernel: str) -> ExecutionResult:
    """Execute a suggestion and compare its output against the oracle."""
    task = get_task(kernel)
    return _compare_against_oracle(run_python_suggestion(code, kernel, task), task)


def evaluate_python_suggestions(
    items: Sequence[tuple[str, str]], *, cuda_execution: str | None = None
) -> list[ExecutionResult]:
    """Batched :func:`evaluate_python_suggestion` over ``(code, kernel)`` pairs.

    The whole batch executes inside a single :func:`fake_runtime` context
    with one CUDA parse/launch reuse scope — amortizing the per-suggestion
    runtime install/teardown and the re-parsing of identical embedded kernel
    sources — and each kernel's oracle task is resolved once per batch.
    Suggestions still execute in **input order** (the order a serial loop
    would use, which matters because the fake cupy/pycuda modules are shared
    objects) and the per-suggestion wrapper modules are rebuilt between
    suggestions (exactly what a standalone evaluation gets), so one
    suggestion mutating its module namespace cannot change another's
    verdict.  Results come back in input order and are identical to
    evaluating each pair on its own.

    ``cuda_execution`` selects the CUDA interpreter engine for every kernel
    launch in the batch: ``"auto"`` (the lockstep engine with transparent
    scalar fallback) or ``"scalar"`` (force the reference thread sweep).
    The default ``None`` imposes nothing, so an ambient
    :func:`~repro.sandbox.cuda_c.interpreter.execution_mode` context or the
    ``$REPRO_CUDA_EXECUTION`` process default stay in effect.  The
    differential-testing suite and the interpreter benchmark run the same
    batch under both modes and assert byte-identical outcomes.
    """
    from repro.sandbox.cuda_c.interpreter import execution_mode, shared_parse_scope

    mode_scope = (
        contextlib.nullcontext() if cuda_execution is None else execution_mode(cuda_execution)
    )
    results: list[ExecutionResult] = []
    tasks: dict[str, SandboxTask] = {}
    with fake_runtime(), shared_parse_scope(), mode_scope:
        for index, (code, kernel) in enumerate(items):
            if index:
                sys.modules.update(_fresh_wrapper_modules())
            task = tasks.get(kernel)
            if task is None:
                task = tasks[kernel] = get_task(kernel)
            results.append(_compare_against_oracle(_run_in_runtime(code, kernel, task), task))
    return results
