"""Restricted execution of Python suggestions against numerical oracles.

``run_python_suggestion`` executes a suggestion module with the fake GPU /
JIT runtimes installed in :data:`sys.modules`, locates the entry function for
the kernel and calls it with the canonical :class:`~repro.sandbox.tasks.SandboxTask`
arguments; ``evaluate_python_suggestion`` additionally compares the result
against the oracle.
"""

from __future__ import annotations

import contextlib
import sys
import types
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.analysis.pythonlang import find_entry_function
from repro.kernels.validation import compare_outputs
from repro.sandbox.tasks import SandboxTask, get_task

__all__ = ["ExecutionResult", "run_python_suggestion", "evaluate_python_suggestion", "fake_runtime"]


@dataclass
class ExecutionResult:
    """Outcome of executing one Python suggestion."""

    passed: bool
    issues: list[str] = field(default_factory=list)
    output: Any = None
    entry_point: str | None = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.passed


def _fake_module_map() -> dict[str, types.ModuleType]:
    """The sys.modules entries that stand in for the GPU / JIT stack."""
    from repro.sandbox import fake_cupy, fake_numba, fake_pycuda
    from repro.sandbox.fake_pycuda import autoinit, compiler, driver, gpuarray

    numba_module = types.ModuleType("numba")
    for name in fake_numba.__all__:
        setattr(numba_module, name, getattr(fake_numba, name))
    numba_cuda = types.ModuleType("numba.cuda")
    for name in ("jit", "grid", "to_device", "synchronize", "is_available"):
        setattr(numba_cuda, name, getattr(fake_numba.cuda, name))
    numba_module.cuda = fake_numba.cuda

    return {
        "numba": numba_module,
        "numba.cuda": numba_cuda,
        "cupy": fake_cupy,
        "cupyx": types.ModuleType("cupyx"),
        "pycuda": fake_pycuda,
        "pycuda.autoinit": autoinit,
        "pycuda.driver": driver,
        "pycuda.compiler": compiler,
        "pycuda.gpuarray": gpuarray,
    }


@contextlib.contextmanager
def fake_runtime() -> Iterator[None]:
    """Temporarily install the fake numba/cupy/pycuda modules."""
    fakes = _fake_module_map()
    saved: dict[str, types.ModuleType | None] = {}
    for name, module in fakes.items():
        saved[name] = sys.modules.get(name)
        sys.modules[name] = module
    try:
        yield
    finally:
        for name, original in saved.items():
            if original is None:
                sys.modules.pop(name, None)
            else:
                sys.modules[name] = original


def run_python_suggestion(code: str, kernel: str, task: SandboxTask | None = None) -> ExecutionResult:
    """Execute ``code`` and call its entry function with the kernel's task arguments."""
    task = task or get_task(kernel)
    entry = find_entry_function(code, kernel)
    if entry is None:
        return ExecutionResult(passed=False, issues=["no callable entry point for the kernel"])
    namespace: dict[str, Any] = {"__name__": "__suggestion__"}
    with fake_runtime():
        try:
            exec(compile(code, "<suggestion>", "exec"), namespace)  # noqa: S102 - sandboxed corpus code
        except Exception as exc:  # pragma: no cover - exercised via evaluate
            return ExecutionResult(passed=False, issues=[f"module execution failed: {exc!r}"])
        func = namespace.get(entry)
        if not callable(func):
            return ExecutionResult(passed=False, issues=[f"entry point {entry!r} is not callable"])
        try:
            output = func(*task.fresh_args())
        except Exception as exc:
            return ExecutionResult(
                passed=False, issues=[f"calling {entry}() raised {type(exc).__name__}: {exc}"],
                entry_point=entry,
            )
    return ExecutionResult(passed=True, output=output, entry_point=entry)


def evaluate_python_suggestion(code: str, kernel: str) -> ExecutionResult:
    """Execute a suggestion and compare its output against the oracle."""
    task = get_task(kernel)
    result = run_python_suggestion(code, kernel, task)
    if not result.passed:
        return result
    output = result.output
    if output is None:
        result.passed = False
        result.issues.append("function returned None")
        return result
    if hasattr(output, "get") and not isinstance(output, (dict, np.ndarray)):
        # pyCUDA GPUArray-style objects copy back via .get().
        try:
            output = output.get()
        except Exception:  # pragma: no cover - defensive
            pass
    comparison = compare_outputs(output, task.expected, rtol=task.rtol, atol=task.atol)
    result.passed = comparison.passed
    result.output = output
    if not comparison.passed:
        result.issues.append(f"numerical mismatch: {comparison.message}")
    return result
