"""A numpy-backed stand-in for :mod:`cupy`.

``cupy`` mirrors the numpy API on GPU arrays; for correctness evaluation it
is sufficient to back every "device" array with a host numpy array.  The two
pieces of genuinely GPU-specific API that the evaluated suggestions use —
``RawKernel`` and ``ElementwiseKernel`` — are executed with the miniature
CUDA-C interpreter in :mod:`repro.sandbox.cuda_c`.

Unknown attributes are forwarded to numpy, so the fake covers the long tail
of ufuncs (``cp.sqrt``, ``cp.sum``...) without enumerating them.
"""

from __future__ import annotations

from typing import Any

import numpy as _np

from repro.sandbox.cuda_c import CudaModule

__all__ = [
    "ndarray",
    "asarray",
    "array",
    "asnumpy",
    "zeros",
    "zeros_like",
    "empty_like",
    "ones",
    "dot",
    "matmul",
    "RawKernel",
    "ElementwiseKernel",
    "float64",
    "float32",
    "int32",
    "int64",
    "cuda",
]

ndarray = _np.ndarray
float64 = _np.float64
float32 = _np.float32
int32 = _np.int32
int64 = _np.int64


def asarray(obj: Any, dtype: Any = None) -> _np.ndarray:
    """Copy host data to the "device" (a fresh numpy array)."""
    return _np.array(obj, dtype=dtype)


def array(obj: Any, dtype: Any = None) -> _np.ndarray:
    return _np.array(obj, dtype=dtype)


def asnumpy(obj: Any) -> _np.ndarray:
    """Copy "device" data back to the host."""
    return _np.asarray(obj)


def zeros(shape: Any, dtype: Any = _np.float64) -> _np.ndarray:
    return _np.zeros(shape, dtype=dtype)


def zeros_like(a: Any) -> _np.ndarray:
    return _np.zeros_like(a)


def empty_like(a: Any) -> _np.ndarray:
    return _np.empty_like(a)


def ones(shape: Any, dtype: Any = _np.float64) -> _np.ndarray:
    return _np.ones(shape, dtype=dtype)


def dot(a: Any, b: Any) -> Any:
    return _np.dot(a, b)


def matmul(a: Any, b: Any) -> Any:
    return _np.matmul(a, b)


class RawKernel:
    """cupy.RawKernel backed by the CUDA-C interpreter."""

    def __init__(self, code: str, name: str, **_kwargs: Any):
        self._module = CudaModule(code)
        self._kernel = self._module.get_kernel(name)
        self.name = name

    def __call__(self, grid: tuple, block: tuple, args: tuple, **_kwargs: Any) -> None:
        self._kernel.launch(grid, block, tuple(args))


class ElementwiseKernel:
    """cupy.ElementwiseKernel: applies a scalar C expression element-wise.

    Only the common ``out = <expression of inputs>`` form is supported, which
    covers the AXPY-style uses that appear in generated code.
    """

    def __init__(self, in_params: str, out_params: str, operation: str, name: str = "kernel",
                 **_kwargs: Any):
        self.in_names = [p.split()[-1] for p in in_params.split(",") if p.strip()]
        self.out_names = [p.split()[-1] for p in out_params.split(",") if p.strip()]
        self.operation = operation
        self.name = name

    def __call__(self, *arrays: Any) -> _np.ndarray:
        values = [_np.asarray(a, dtype=_np.float64) for a in arrays]
        names = self.in_names + self.out_names
        if len(values) < len(self.in_names):
            raise TypeError(f"{self.name} expects at least {len(self.in_names)} arguments")
        shape = values[0].shape if values else ()
        env = {name: values[idx] if idx < len(values) else _np.zeros(shape)
               for idx, name in enumerate(names)}
        out_name = self.out_names[0] if self.out_names else "out"
        out = env.get(out_name)
        if out is None or out.shape != shape:
            out = _np.zeros(shape)
            env[out_name] = out
        statement = self.operation.strip().rstrip(";")
        lhs, _, rhs = statement.partition("=")
        expression = rhs.strip() if rhs else statement
        result = eval(expression, {"__builtins__": {}}, env)  # noqa: S307 - sandboxed arithmetic
        out[...] = result
        return out


class _FakeCudaNamespace:
    """Minimal ``cupy.cuda`` namespace (stream synchronisation no-ops)."""

    class Device:
        def __init__(self, _id: int = 0):
            self.id = _id

        def synchronize(self) -> None:
            return None

    class Stream:
        null = None

        def synchronize(self) -> None:
            return None

    @staticmethod
    def get_current_stream() -> "Any":
        class _Stream:
            @staticmethod
            def synchronize() -> None:
                return None

        return _Stream()


cuda = _FakeCudaNamespace()


def __getattr__(name: str) -> Any:
    """Fall back to numpy for the long tail of array-API functions."""
    if hasattr(_np, name):
        return getattr(_np, name)
    raise AttributeError(f"fake cupy has no attribute {name!r}")
