"""pycuda.compiler stand-in: SourceModule on top of the CUDA-C interpreter."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.sandbox.cuda_c import CudaModule
from repro.sandbox.fake_pycuda.driver import DeviceAllocation, _ArgumentWrapper

__all__ = ["SourceModule"]


class _CompiledKernel:
    """Callable returned by ``SourceModule.get_function``."""

    def __init__(self, module: CudaModule, name: str):
        self._kernel = module.get_kernel(name)
        self.name = name

    @property
    def lockstep(self) -> bool:
        """Whether launches take the vectorized lockstep engine (CI smoke
        asserts this holds for every stock corpus kernel)."""
        return self._kernel.lockstep is not None

    def __call__(self, *args: Any, block: tuple = (1, 1, 1), grid: tuple = (1, 1), **_kw: Any) -> None:
        unwrapped = tuple(self._unwrap(arg) for arg in args)
        self._kernel.launch(grid, block, unwrapped)

    @staticmethod
    def _unwrap(arg: Any) -> Any:
        if isinstance(arg, _ArgumentWrapper):
            return arg.device_view()
        if isinstance(arg, DeviceAllocation):
            return arg.buffer
        if hasattr(arg, "device_view") and callable(arg.device_view):
            # GPUArray passed directly: launch against its backing buffer so
            # kernel writes are visible through .get(), like real pyCUDA.
            return arg.device_view()
        if isinstance(arg, np.generic):
            return arg.item()
        return arg


class SourceModule:
    """Compile CUDA-C source with the miniature interpreter."""

    def __init__(self, source: str, **_options: Any):
        self._module = CudaModule(source)

    def get_function(self, name: str) -> _CompiledKernel:
        return _CompiledKernel(self._module, name)
