"""A stand-in for :mod:`pycuda` backed by the miniature CUDA-C interpreter.

The sub-modules mirror the parts of pyCUDA that generated kernels touch:

* :mod:`repro.sandbox.fake_pycuda.autoinit` — context initialisation (no-op),
* :mod:`repro.sandbox.fake_pycuda.driver` — ``In``/``Out``/``InOut`` argument
  wrappers and memory helpers,
* :mod:`repro.sandbox.fake_pycuda.compiler` — ``SourceModule`` compiling CUDA
  C through :mod:`repro.sandbox.cuda_c`,
* :mod:`repro.sandbox.fake_pycuda.gpuarray` — ``GPUArray`` with ``to_gpu`` /
  ``get``.
"""

from __future__ import annotations

from repro.sandbox.fake_pycuda import autoinit, compiler, driver, gpuarray

__all__ = ["autoinit", "compiler", "driver", "gpuarray"]
