"""pycuda.gpuarray stand-in."""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["GPUArray", "to_gpu", "zeros", "empty"]


class GPUArray:
    """A device array backed by a host numpy array."""

    def __init__(self, data: np.ndarray):
        self._data = np.asarray(data)

    def get(self) -> np.ndarray:
        """Copy the array back to the host."""
        return self._data.copy()

    def device_view(self) -> np.ndarray:
        """The backing "device" buffer itself (kernel writes are visible),
        mirroring the driver argument wrappers' protocol."""
        return self._data

    @property
    def gpudata(self) -> np.ndarray:
        return self._data

    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def size(self) -> int:
        return int(self._data.size)

    def __array__(self, dtype: Any = None) -> np.ndarray:
        return np.asarray(self._data, dtype=dtype)

    def __len__(self) -> int:  # pragma: no cover - convenience
        return len(self._data)


def to_gpu(array: Any) -> GPUArray:
    return GPUArray(np.array(array))


def zeros(shape: Any, dtype: Any = np.float64) -> GPUArray:
    return GPUArray(np.zeros(shape, dtype=dtype))


def empty(shape: Any, dtype: Any = np.float64) -> GPUArray:
    return GPUArray(np.empty(shape, dtype=dtype))
