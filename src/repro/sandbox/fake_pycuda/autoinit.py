"""pycuda.autoinit stand-in: importing it "initialises the device"."""

from __future__ import annotations


class _FakeDevice:
    """Just enough of pycuda.driver.Device for introspection calls."""

    def name(self) -> str:  # pragma: no cover - cosmetic
        return "Simulated CUDA Device"

    def compute_capability(self) -> tuple[int, int]:  # pragma: no cover - cosmetic
        return (8, 0)


device = _FakeDevice()
context = None
