"""pycuda.driver stand-in: argument wrappers and memory helpers."""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["In", "Out", "InOut", "mem_alloc", "memcpy_htod", "memcpy_dtoh", "DeviceAllocation"]


class _ArgumentWrapper:
    """Base class for ``drv.In``/``drv.Out``/``drv.InOut`` wrappers.

    The wrapped numpy array *is* the device buffer in the simulation, so
    kernels write straight into the caller's array, matching pyCUDA's
    copy-back semantics for ``Out``/``InOut``.
    """

    direction = "inout"

    def __init__(self, array: Any):
        self.array = np.asarray(array)

    def device_view(self) -> np.ndarray:
        return self.array


class In(_ArgumentWrapper):
    direction = "in"


class Out(_ArgumentWrapper):
    direction = "out"


class InOut(_ArgumentWrapper):
    direction = "inout"


class DeviceAllocation:
    """Result of ``mem_alloc``: a named chunk of simulated device memory."""

    def __init__(self, nbytes: int):
        self.nbytes = nbytes
        self.buffer = np.zeros(nbytes // 8 or 1, dtype=np.float64)


def mem_alloc(nbytes: int) -> DeviceAllocation:
    return DeviceAllocation(int(nbytes))


def memcpy_htod(dest: DeviceAllocation, src: np.ndarray) -> None:
    flat = np.asarray(src, dtype=np.float64).reshape(-1)
    if flat.size == dest.buffer.size:
        # Device allocations are stable memory: copy in place so kernels
        # holding a reference to the buffer observe the upload (real pyCUDA
        # semantics; replacing the array would orphan such references).
        np.copyto(dest.buffer, flat)
    else:
        dest.buffer = flat.copy()


def memcpy_dtoh(dest: np.ndarray, src: DeviceAllocation) -> None:
    flat = np.asarray(dest).reshape(-1)
    flat[: src.buffer.size] = src.buffer[: flat.size]
