"""A numpy-backed stand-in for :mod:`pykokkos`.

PyKokkos expresses parallelism as *workunits* dispatched through
``parallel_for`` / ``parallel_reduce`` over an index range, with data held
in ``View`` objects that interoperate with numpy.  For correctness
evaluation the dispatch loops run serially over the index range and views
are plain numpy arrays; ``atomic_add`` is a direct in-place update, which is
exactly the serialized semantics of the real atomic.

The fake is installed by :func:`repro.sandbox.executor.fake_runtime`
unconditionally (like the other fake runtimes) — only suggestions that
``import pykokkos`` ever touch it.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as _np

__all__ = [
    "workunit",
    "parallel_for",
    "parallel_reduce",
    "Acc",
    "View",
    "View1D",
    "View2D",
    "from_numpy",
    "atomic_add",
    "initialize",
    "finalize",
    "double",
    "int32",
    "int64",
]

double = _np.float64
int32 = _np.int32
int64 = _np.int64


def workunit(*dargs: Any, **dkwargs: Any) -> Callable:
    """Behave like ``@pk.workunit`` and ``@pk.workunit(...)`` simultaneously."""
    if len(dargs) == 1 and callable(dargs[0]) and not dkwargs:
        return dargs[0]

    def decorate(func: Callable) -> Callable:
        return func

    return decorate


class View(_np.ndarray):
    """``pk.View``: a numpy array allocated through the Kokkos-style API."""

    def __new__(cls, shape: Any, dtype: Any = double) -> "View":
        return _np.zeros(shape, dtype=dtype).view(cls)


#: Dimension-tagged aliases used in workunit type annotations.
View1D = View
View2D = View


def from_numpy(array: Any) -> _np.ndarray:
    """Zero-copy interop: the "view" shares the numpy buffer (as in pykokkos)."""
    return _np.asarray(array)


class Acc:
    """Reduction accumulator: ``acc += value`` inside a workunit."""

    __slots__ = ("val",)

    def __init__(self, value: float = 0.0):
        self.val = value

    def __iadd__(self, other: Any) -> "Acc":
        self.val += other
        return self

    def __float__(self) -> float:
        return float(self.val)


def parallel_for(n: Any, func: Callable, **kwargs: Any) -> None:
    """Serial dispatch of a workunit over ``range(n)`` (or an explicit range)."""
    indices = range(n) if isinstance(n, int) else n
    for i in indices:
        func(i, **kwargs)


def parallel_reduce(n: Any, func: Callable, **kwargs: Any) -> float:
    """Serial reduction dispatch: the workunit accumulates into an :class:`Acc`."""
    acc = Acc(0.0)
    indices = range(n) if isinstance(n, int) else n
    for i in indices:
        func(i, acc, **kwargs)
    return acc.val


def atomic_add(view: Any, index: Any, value: Any) -> None:
    """``pk.atomic_add(view, [i], v)``: serialized atomic increment."""
    if isinstance(index, (list, tuple)):
        index = index[0] if len(index) == 1 else tuple(index)
    view[index] += value


def initialize(*_args: Any, **_kwargs: Any) -> None:
    return None


def finalize() -> None:
    return None
