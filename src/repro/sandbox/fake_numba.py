"""A no-op stand-in for :mod:`numba`.

Numba's JIT decorators compile numerically identical code, so for correctness
evaluation it is sufficient to run the undecorated Python function with
``prange`` aliased to ``range``.  The ``cuda`` attribute provides the small
surface (``@cuda.jit``, ``cuda.grid``) that GPU-flavoured Numba suggestions
touch; kernels decorated with ``@cuda.jit`` must be launched with explicit
grid/block configuration, which the fake implements by looping over the
flattened thread index.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["jit", "njit", "prange", "vectorize", "float64", "int32", "int64", "cuda"]

prange = range
float64 = float
int32 = int
int64 = int


def _decorator_factory(*dargs: Any, **dkwargs: Any) -> Callable:
    """Behave like ``@njit`` and ``@njit(...)`` simultaneously."""
    if len(dargs) == 1 and callable(dargs[0]) and not dkwargs:
        return dargs[0]

    def decorate(func: Callable) -> Callable:
        return func

    return decorate


jit = _decorator_factory
njit = _decorator_factory
vectorize = _decorator_factory


class _FakeCudaKernel:
    """Callable returned by ``@cuda.jit`` supporting ``kernel[grid, block](...)``."""

    def __init__(self, func: Callable):
        self.func = func
        self._grid = 1
        self._block = 1

    def __getitem__(self, config: tuple) -> "_FakeCudaKernel":
        grid, block = config
        clone = _FakeCudaKernel(self.func)
        clone._grid = grid
        clone._block = block
        return clone

    def __call__(self, *args: Any) -> None:
        total = _dim_total(self._grid) * _dim_total(self._block)
        for thread_id in range(total):
            _CURRENT_THREAD["id"] = thread_id
            self.func(*args)
        _CURRENT_THREAD["id"] = 0


def _dim_total(dim: Any) -> int:
    if isinstance(dim, int):
        return dim
    out = 1
    for v in dim:
        out *= int(v)
    return out


_CURRENT_THREAD = {"id": 0}


class _FakeCuda:
    """The ``numba.cuda`` namespace."""

    @staticmethod
    def jit(*dargs: Any, **dkwargs: Any) -> Callable:
        if len(dargs) == 1 and callable(dargs[0]) and not dkwargs:
            return _FakeCudaKernel(dargs[0])

        def decorate(func: Callable) -> _FakeCudaKernel:
            return _FakeCudaKernel(func)

        return decorate

    @staticmethod
    def grid(ndim: int) -> int | tuple[int, ...]:
        if ndim == 1:
            return _CURRENT_THREAD["id"]
        return tuple([_CURRENT_THREAD["id"]] + [0] * (ndim - 1))

    @staticmethod
    def to_device(array: Any) -> Any:
        return array

    @staticmethod
    def synchronize() -> None:
        return None

    @staticmethod
    def is_available() -> bool:
        return True


cuda = _FakeCuda()
