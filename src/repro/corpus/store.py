"""The searchable corpus the simulated suggestion engine draws from.

``build_default_corpus`` populates a :class:`CorpusStore` with

* one correct template per (kernel, language, programming model) cell, and
* the mutated variants of every template produced by each applicable
  operator in :mod:`repro.corpus.mutations`,

so that the store's population mirrors what a code model trained on public
repositories would have absorbed: a kernel of correct idiomatic solutions
surrounded by a halo of near-misses, serial fallbacks and unfinished
completions.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.corpus.mutations import MUTATION_OPERATORS
from repro.corpus.snippets import CodeSnippet, SnippetOrigin
from repro.corpus.templates import iter_templates
from repro.models.programming_models import PROGRAMMING_MODELS

__all__ = [
    "CorpusStore",
    "build_default_corpus",
    "default_corpus",
    "clear_default_corpus_cache",
]


def _model_uid(language: str, model_short: str) -> str:
    uid = f"{language}.{model_short}"
    if uid not in PROGRAMMING_MODELS:
        raise KeyError(f"template refers to unknown programming model {uid!r}")
    return uid


@dataclass
class CorpusStore:
    """In-memory snippet corpus with per-cell lookup."""

    snippets: list[CodeSnippet] = field(default_factory=list)

    # -- population ---------------------------------------------------------
    def add(self, snippet: CodeSnippet) -> None:
        self.snippets.append(snippet)

    def extend(self, snippets: Iterable[CodeSnippet]) -> None:
        self.snippets.extend(snippets)

    def __len__(self) -> int:
        return len(self.snippets)

    def __iter__(self) -> Iterator[CodeSnippet]:
        return iter(self.snippets)

    # -- lookup ---------------------------------------------------------------
    def candidates(self, language: str, kernel: str) -> list[CodeSnippet]:
        """All snippets implementing ``kernel`` in ``language`` (any model)."""
        language = language.lower()
        kernel = kernel.lower()
        return [s for s in self.snippets if s.language == language and s.kernel == kernel]

    def candidates_for_model(
        self,
        language: str,
        model_uid: str,
        kernel: str,
        *,
        correct_only: bool = False,
    ) -> list[CodeSnippet]:
        """Snippets for one (language, model, kernel) cell."""
        out = [
            s
            for s in self.candidates(language, kernel)
            if s.label_model == model_uid and (s.label_correct or not correct_only)
        ]
        return out

    def template(self, language: str, model_uid: str, kernel: str) -> CodeSnippet | None:
        """The curated correct template for a cell, if present."""
        for snippet in self.candidates_for_model(language, model_uid, kernel, correct_only=True):
            if snippet.origin is SnippetOrigin.TEMPLATE:
                return snippet
        return None

    def other_model_snippets(
        self, language: str, model_uid: str, kernel: str, *, correct_only: bool = True
    ) -> list[CodeSnippet]:
        """Snippets for the same kernel/language but a *different* model."""
        return [
            s
            for s in self.candidates(language, kernel)
            if s.label_model not in (model_uid, "serial", "none")
            and (s.label_correct or not correct_only)
        ]

    # -- statistics -----------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Population statistics by origin, correctness and language."""
        counter: Counter[str] = Counter()
        for snippet in self.snippets:
            counter["total"] += 1
            counter[f"origin:{snippet.origin.value}"] += 1
            counter[f"language:{snippet.language}"] += 1
            counter["correct" if snippet.label_correct else "incorrect"] += 1
            if snippet.mutation:
                counter[f"mutation:{snippet.mutation}"] += 1
        return dict(counter)


def build_default_corpus(*, include_mutations: bool = True) -> CorpusStore:
    """Build the default corpus from the template library.

    Parameters
    ----------
    include_mutations:
        When True (default) every applicable mutation operator is applied to
        every template and the results are added as incorrect variants.
    """
    store = CorpusStore()
    for language, model_short, kernel, code in iter_templates():
        uid = _model_uid(language, model_short)
        template = CodeSnippet(
            code=code,
            language=language,
            kernel=kernel,
            label_model=uid,
            label_correct=True,
            origin=SnippetOrigin.TEMPLATE,
            metadata={"model_short": model_short},
        )
        store.add(template)
        if not include_mutations:
            continue
        for operator in MUTATION_OPERATORS.values():
            mutated = operator.apply(template)
            if mutated is not None:
                store.add(mutated)
    return store


#: Process-wide memo of the default corpus, keyed by ``include_mutations``.
#: The corpus is read-only once built (samplers and analyzers never mutate
#: snippets), so one shared instance can serve every runner and thread.
_DEFAULT_CORPUS_CACHE: dict[bool, CorpusStore] = {}


def default_corpus(*, include_mutations: bool = True) -> CorpusStore:
    """The shared default corpus, built at most once per process.

    Every :class:`~repro.codex.sampler.SuggestionSampler` without an explicit
    corpus draws from this store, so repeated runner construction (tables,
    figures, ablations) stops re-deriving templates and mutations.
    """
    if include_mutations not in _DEFAULT_CORPUS_CACHE:
        _DEFAULT_CORPUS_CACHE[include_mutations] = build_default_corpus(
            include_mutations=include_mutations
        )
    return _DEFAULT_CORPUS_CACHE[include_mutations]


def clear_default_corpus_cache() -> None:
    """Drop the memoized default corpus (tests that mutate snippets use this)."""
    _DEFAULT_CORPUS_CACHE.clear()
