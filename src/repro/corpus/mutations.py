"""Mutation operators: realistic ways in which suggestions go wrong.

The paper (and the related work it cites) reports recurring failure modes of
Copilot suggestions: code in a *different* programming model than requested,
"further simplified code that relies on undefined functions", incorrect or
incomplete code, and empty or comment-only answers.  Each operator below
implements one such failure mode as a deterministic text transformation of a
correct template, together with the resulting ground-truth labels.

Operators never raise when a pattern does not apply — ``apply`` returns
``None`` so the caller can fall back to a different operator.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from repro.corpus.snippets import CodeSnippet, SnippetOrigin

__all__ = [
    "MutationOperator",
    "MUTATION_OPERATORS",
    "apply_mutation",
    "available_mutations",
]


# ---------------------------------------------------------------------------
# Helpers shared by the operators
# ---------------------------------------------------------------------------

_C_LIKE = ("cpp",)
_DIRECTIVE_PREFIXES = ("#pragma omp", "#pragma acc", "!$omp", "!$acc")


def _language_family(language: str) -> str:
    if language == "cpp":
        return "c"
    return language


def _flip_plus_on_update_line(code: str) -> str | None:
    """Flip the last ``+`` into ``-`` on the first line that looks like the
    kernel's numerical update (an assignment whose right-hand side multiplies
    two operands and adds a third)."""
    lines = code.splitlines()
    for idx, line in enumerate(lines):
        stripped = line.strip()
        if stripped.startswith(("//", "#", "!", "*")) and not stripped.startswith("#pragma"):
            continue
        if "*" not in line:
            continue
        if not re.search(r"(=|\+=)", line):
            continue
        # Only touch lines that combine a product with an addition: the
        # canonical `y = a*x + y`, `sum += A*x`, `u_new = (u+...)/6` shapes.
        rhs = line.split("=", 1)[-1]
        if "+" not in rhs:
            continue
        flipped = line[: len(line) - len(rhs)] + _replace_last(rhs, "+", "-")
        new_lines = list(lines)
        new_lines[idx] = flipped
        return "\n".join(new_lines)
    return None


def _replace_last(text: str, old: str, new: str) -> str:
    pos = text.rfind(old)
    if pos < 0:
        return text
    return text[:pos] + new + text[pos + len(old):]


# ---------------------------------------------------------------------------
# Operator implementations
# ---------------------------------------------------------------------------

def _mutate_wrong_operator(snippet: CodeSnippet) -> CodeSnippet | None:
    """Flip a ``+`` to ``-`` in the numerical update: plausible-looking code
    that computes the wrong quantity."""
    mutated = _flip_plus_on_update_line(snippet.code)
    if mutated is None or mutated == snippet.code:
        return None
    return snippet.with_code(
        mutated,
        mutation="wrong_operator",
        label_correct=False,
        origin=SnippetOrigin.MUTATION,
    )


def _mutate_off_by_one(snippet: CodeSnippet) -> CodeSnippet | None:
    """Shift a loop's start index by one: the classic off-by-one bug."""
    code = snippet.code
    lang = snippet.language
    mutated: str | None = None
    if lang == "cpp":
        new_code, count = re.subn(
            r"for \(int (\w+) = 0;", r"for (int \1 = 1;", code, count=1
        )
        if count:
            mutated = new_code
        else:
            # CUDA-style guard: weaken `if (i < n)` to `if (i <= n)`.
            new_code, count = re.subn(r"if \((\w+) < (\w+)\)", r"if (\1 <= \2)", code, count=1)
            mutated = new_code if count else None
    elif lang == "fortran":
        new_code, count = re.subn(r"do (\w+) = 1,", r"do \1 = 0,", code, count=1)
        mutated = new_code if count else None
    elif lang == "julia":
        new_code, count = re.subn(r"in 1:(\w+)\b", r"in 0:\1", code, count=1)
        if not count:
            new_code, count = re.subn(r"in eachindex\((\w+)\)", r"in 0:length(\1)", code, count=1)
        mutated = new_code if count else None
    elif lang == "python":
        new_code, count = re.subn(r"range\((\w+)\)", r"range(1, \1 + 1)", code, count=1)
        if not count:
            new_code, count = re.subn(r"prange\((\w+)\)", r"prange(1, \1 + 1)", code, count=1)
        mutated = new_code if count else None
    if mutated is None or mutated == code:
        return None
    return snippet.with_code(
        mutated,
        mutation="off_by_one",
        label_correct=False,
        origin=SnippetOrigin.MUTATION,
    )


def _mutate_undefined_helper(snippet: CodeSnippet) -> CodeSnippet | None:
    """Replace the computational core with a call to a function that is never
    defined — the "relies on undefined functions" failure mode."""
    code = snippet.code
    kernel = snippet.kernel
    helper = f"{kernel}_compute_element"
    lines = code.splitlines()
    for idx, line in enumerate(lines):
        stripped = line.strip()
        if stripped.startswith(("//", "#", "!", "*")) and not stripped.startswith("#pragma"):
            continue
        match = re.match(r"^(\s*)(\w+(?:\[[^\]]+\]|\([^\)]+\))?)\s*(=|\+=)\s*(.+?)(;?)\s*$", line)
        if not match:
            continue
        indent, lhs, op, rhs, semi = match.groups()
        if "*" not in rhs and "+" not in rhs:
            continue
        if any(tok in rhs for tok in ("blockIdx", "threadIdx", "workitemIdx", "workgroupIdx")):
            # Thread-index bookkeeping is not the computational core.
            continue
        if snippet.language == "python":
            replacement = f"{indent}{lhs} {op} {helper}(i)"
        elif snippet.language == "fortran":
            replacement = f"{indent}{lhs} {op} {helper}(i)"
        elif snippet.language == "julia":
            replacement = f"{indent}{lhs} {op} {helper}(i)"
        else:
            replacement = f"{indent}{lhs} {op} {helper}(i){semi or ';'}"
        new_lines = list(lines)
        new_lines[idx] = replacement
        return snippet.with_code(
            "\n".join(new_lines),
            mutation="undefined_helper",
            label_correct=False,
            origin=SnippetOrigin.MUTATION,
        )
    return None


def _mutate_drop_parallelism(snippet: CodeSnippet) -> CodeSnippet | None:
    """Remove the parallel construct, leaving serial (but numerically correct)
    code: a frequent Copilot failure for parallel-model prompts."""
    code = snippet.code
    lines = code.splitlines()
    changed = False
    new_lines: list[str] = []
    for line in lines:
        stripped = line.strip()
        if any(stripped.startswith(prefix) for prefix in _DIRECTIVE_PREFIXES):
            changed = True
            continue
        if stripped.startswith("@njit") or stripped.startswith("@jit") or stripped.startswith("@cuda.jit"):
            changed = True
            continue
        if "Threads.@threads " in line:
            new_lines.append(line.replace("Threads.@threads ", ""))
            changed = True
            continue
        new_lines.append(line)
    if not changed:
        return None
    mutated = "\n".join(new_lines)
    # Numba code without the decorator still imports numba, so strip the
    # import as well to make it a genuinely serial suggestion.
    mutated = re.sub(r"^from numba import .*$", "", mutated, flags=re.MULTILINE)
    mutated = re.sub(r"^import numba.*$", "", mutated, flags=re.MULTILINE)
    mutated = mutated.replace("prange(", "range(")
    from dataclasses import replace as _replace

    # Python code stripped of its JIT/GPU constructs degenerates to plain
    # numpy, which the paper treats as a model of its own; elsewhere the
    # result is serial code with no recognisable parallel model.
    fallback_model = "python.numpy" if snippet.language == "python" else "serial"
    return _replace(
        snippet,
        code=mutated,
        mutation="drop_parallelism",
        label_correct=False,
        origin=SnippetOrigin.MUTATION,
        label_model=fallback_model,
    )


def _mutate_truncate(snippet: CodeSnippet) -> CodeSnippet | None:
    """Cut the suggestion off mid-way, as an interrupted completion would be."""
    lines = [ln for ln in snippet.code.splitlines()]
    body_lines = [ln for ln in lines if ln.strip()]
    if len(body_lines) < 6:
        return None
    cut = max(3, int(len(lines) * 0.55))
    mutated = "\n".join(lines[:cut])
    if mutated == snippet.code:
        return None
    return snippet.with_code(
        mutated,
        mutation="truncate",
        label_correct=False,
        origin=SnippetOrigin.MUTATION,
    )


#: ``int i = blockIdx.x * blockDim.x + threadIdx.x;`` — the canonical
#: global-lane-index computation in the embedded CUDA-C templates.
_CUDA_LANE_DECL_RE = re.compile(
    r"int\s+(\w+)\s*=\s*blockIdx\.\w+\s*\*\s*blockDim\.\w+\s*\+\s*threadIdx\.\w+\s*;"
)


def _mutate_race_injection(snippet: CodeSnippet) -> CodeSnippet | None:
    """Turn a per-lane store into a fixed-index store: every thread now
    writes element 0, a classic write-write race.  The result is still
    syntactically valid CUDA and usually numerically wrong only in the
    raced element, which makes it a good adversarial case for the static
    hazard analyzer (the lockstep runtime catches it as a cross-lane-write
    or duplicate-scatter hazard and falls back to the scalar sweep)."""
    if snippet.language != "python":
        return None
    code = snippet.code
    if "RawKernel" not in code and "SourceModule" not in code:
        return None
    if snippet.kernel == "cg":
        # CG re-launches its kernel ~1000x per solve; with the race injected
        # every launch takes the scalar-sweep fallback, which makes sandbox
        # evaluation of this mutant disproportionately slow.
        return None
    lane_match = _CUDA_LANE_DECL_RE.search(code)
    if lane_match is None:
        return None
    lane = lane_match.group(1)
    store_re = re.compile(r"(\w+)\[" + re.escape(lane) + r"\](\s*)(\+?=)(?!=)")
    mutated, count = store_re.subn(r"\g<1>[0]\g<2>\g<3>", code, count=1)
    if not count or mutated == code:
        return None
    return snippet.with_code(
        mutated,
        mutation="race_injection",
        label_correct=False,
        origin=SnippetOrigin.MUTATION,
    )


def _mutate_reduction_order(snippet: CodeSnippet) -> CodeSnippet | None:
    """Reverse the scan accumulation direction: the inclusive prefix sum
    becomes a suffix sum.  The code still looks like a perfectly reasonable
    reduction loop — the classic "wrong reduction order" parallelization bug
    — and is race-free, so only the numerical oracle catches it."""
    if snippet.kernel != "scan":
        return None
    code = snippet.code
    mutated: str | None = None
    new_code, count = re.subn(
        r"for \(int j = 0; j <= i; j\+\+\)", "for (int j = i; j < n; j++)", code, count=1
    )
    if count:
        mutated = new_code
    else:
        new_code, count = re.subn(
            r"for j in range\(i \+ 1\):", "for j in range(i, x.shape[0]):", code, count=1
        )
        if count:
            mutated = new_code
        elif "np.cumsum(x)" in code:
            mutated = code.replace("np.cumsum(x)", "np.cumsum(x[::-1])[::-1]", 1)
    if mutated is None or mutated == code:
        return None
    return snippet.with_code(
        mutated,
        mutation="reduction_order",
        label_correct=False,
        origin=SnippetOrigin.MUTATION,
    )


def _mutate_drop_atomic(snippet: CodeSnippet) -> CodeSnippet | None:
    """Replace the atomic histogram increment with a plain store: the
    lost-update bug.  The rewritten code sets ``hist[b] = 1.0`` instead of
    accumulating, so it is numerically wrong even under the serialized
    sandbox semantics — exactly like the real lost-update races that only
    *look* correct until two threads hit the same bin."""
    if snippet.kernel != "histogram":
        return None
    code = snippet.code
    mutated: str | None = None
    # The bin index is itself an indexed load (``hist[bins[i]]``), so the
    # index group must admit one level of nested brackets.
    index = r"((?:[^\[\]]|\[[^\]]*\])+)"
    new_code, count = re.subn(
        rf"atomicAdd\(&(\w+)\[{index}\], ([^)]+)\);", r"\1[\2] = \3;", code, count=1
    )
    if count:
        mutated = new_code
    else:
        new_code, count = re.subn(
            rf"pk\.atomic_add\((\w+), \[{index}\], ([^)]+)\)", r"\1[\2] = \3", code, count=1
        )
        if count:
            mutated = new_code
    if mutated is None or mutated == code:
        return None
    return snippet.with_code(
        mutated,
        mutation="drop_atomic",
        label_correct=False,
        origin=SnippetOrigin.MUTATION,
    )


def _mutate_bounds_off_by_one(snippet: CodeSnippet) -> CodeSnippet | None:
    """Weaken the CUDA guard ``if (i < n)`` to ``if (i <= n)``: the halo /
    bounds off-by-one that sends exactly one lane out of bounds.  Restricted
    to the parallel kernel families whose geometry profiles give the static
    analyzer concrete buffer sizes, so the mutant is provably ``HAZARD``
    (the lane-index range leaves ``[0, size)`` and every value is attained)."""
    if snippet.kernel not in ("scan", "histogram") or snippet.language != "python":
        return None
    code = snippet.code
    if "RawKernel" not in code and "SourceModule" not in code:
        return None
    mutated, count = re.subn(r"if \((\w+) < (\w+)\)", r"if (\1 <= \2)", code, count=1)
    if not count or mutated == code:
        return None
    return snippet.with_code(
        mutated,
        mutation="bounds_off_by_one",
        label_correct=False,
        origin=SnippetOrigin.MUTATION,
    )


def _mutate_comment_only(snippet: CodeSnippet) -> CodeSnippet | None:
    """Replace the code with a restatement of the prompt as a comment — the
    "no code at all" answer."""
    prefix = {"cpp": "//", "fortran": "!", "python": "#", "julia": "#"}.get(snippet.language, "//")
    text = (
        f"{prefix} {snippet.kernel.upper()} implementation\n"
        f"{prefix} TODO: implement {snippet.kernel} here\n"
    )
    return CodeSnippet(
        code=text,
        language=snippet.language,
        kernel=snippet.kernel,
        label_model="none",
        label_correct=False,
        origin=SnippetOrigin.NON_CODE,
        mutation="comment_only",
        metadata=dict(snippet.metadata),
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MutationOperator:
    """A named corruption operator."""

    name: str
    description: str
    func: Callable[[CodeSnippet], CodeSnippet | None]
    #: Relative frequency among incorrect suggestions (used by the sampler).
    weight: float = 1.0

    def apply(self, snippet: CodeSnippet) -> CodeSnippet | None:
        """Apply to ``snippet``; return None when the operator does not apply."""
        return self.func(snippet)


MUTATION_OPERATORS: dict[str, MutationOperator] = {
    op.name: op
    for op in [
        MutationOperator(
            name="wrong_operator",
            description="plausible code computing the wrong expression (sign flip)",
            func=_mutate_wrong_operator,
            weight=1.5,
        ),
        MutationOperator(
            name="off_by_one",
            description="loop bounds shifted by one",
            func=_mutate_off_by_one,
            weight=1.2,
        ),
        MutationOperator(
            name="undefined_helper",
            description="computation delegated to a function that is never defined",
            func=_mutate_undefined_helper,
            weight=1.0,
        ),
        MutationOperator(
            name="drop_parallelism",
            description="serial code with the parallel construct removed",
            func=_mutate_drop_parallelism,
            weight=1.3,
        ),
        MutationOperator(
            name="race_injection",
            description="per-lane CUDA store rewritten to a fixed index (write-write race)",
            func=_mutate_race_injection,
            weight=0.6,
        ),
        MutationOperator(
            name="reduction_order",
            description="scan accumulation reversed (prefix sum becomes suffix sum)",
            func=_mutate_reduction_order,
            weight=0.9,
        ),
        MutationOperator(
            name="drop_atomic",
            description="atomic histogram increment replaced by a plain store (lost update)",
            func=_mutate_drop_atomic,
            weight=0.9,
        ),
        MutationOperator(
            name="bounds_off_by_one",
            description="CUDA guard weakened from < to <= (one lane out of bounds)",
            func=_mutate_bounds_off_by_one,
            weight=0.6,
        ),
        MutationOperator(
            name="truncate",
            description="completion cut off before the code is finished",
            func=_mutate_truncate,
            weight=0.8,
        ),
        MutationOperator(
            name="comment_only",
            description="no code, only a comment restating the prompt",
            func=_mutate_comment_only,
            weight=0.7,
        ),
    ]
}


def available_mutations(snippet: CodeSnippet) -> list[str]:
    """Names of the operators that actually apply to ``snippet``."""
    names = []
    for name, op in MUTATION_OPERATORS.items():
        if op.apply(snippet) is not None:
            names.append(name)
    return names


def apply_mutation(snippet: CodeSnippet, name: str) -> CodeSnippet | None:
    """Apply operator ``name`` to ``snippet`` (None when it does not apply)."""
    if name not in MUTATION_OPERATORS:
        raise KeyError(f"unknown mutation operator {name!r}; known: {', '.join(MUTATION_OPERATORS)}")
    return MUTATION_OPERATORS[name].apply(snippet)
