"""Code snippet data model.

A :class:`CodeSnippet` is a single candidate implementation: either a curated
correct template, a mutated (incorrect) variant, a snippet for a different
programming model, or a non-code answer.  The ground-truth labels carried
here (``label_correct``, ``label_model``) are used only for corpus statistics
and for testing the static analyzers — the evaluation pipeline itself judges
suggestions exclusively through :mod:`repro.analysis`, mirroring the way the
paper's authors judged raw Copilot output by inspection.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field, replace
from typing import Any

__all__ = ["SnippetOrigin", "CodeSnippet"]


class SnippetOrigin(enum.Enum):
    """Where a snippet came from."""

    #: A curated correct template from :mod:`repro.corpus.templates`.
    TEMPLATE = "template"
    #: A mutated variant of a template.
    MUTATION = "mutation"
    #: A template belonging to a *different* programming model than requested.
    OTHER_MODEL = "other_model"
    #: A non-code answer (empty suggestion, bare comment, prose).
    NON_CODE = "non_code"


@dataclass(frozen=True)
class CodeSnippet:
    """A single code suggestion candidate."""

    #: The source code text (may be empty for non-code answers).
    code: str
    #: Host language canonical name.
    language: str
    #: Kernel the snippet is supposed to implement.
    kernel: str
    #: Ground-truth programming model uid actually used by the snippet
    #: ("serial" when no parallel model is used, "none" for non-code).
    label_model: str
    #: Ground-truth correctness of the snippet (mathematics + parallel model).
    label_correct: bool
    #: Provenance.
    origin: SnippetOrigin = SnippetOrigin.TEMPLATE
    #: Name of the mutation operator applied, when origin == MUTATION.
    mutation: str = ""
    #: Free-form metadata.
    metadata: dict[str, Any] = field(default_factory=dict, compare=False, hash=False)

    @property
    def is_code(self) -> bool:
        """Whether the snippet contains anything that looks like code."""
        stripped = self.code.strip()
        if not stripped:
            return False
        lines = [ln.strip() for ln in stripped.splitlines() if ln.strip()]
        comment_prefixes = ("//", "#", "!", "/*", "*")
        return any(not ln.startswith(comment_prefixes) for ln in lines)

    @property
    def line_count(self) -> int:
        return len([ln for ln in self.code.splitlines() if ln.strip()])

    @property
    def digest(self) -> str:
        """Stable short hash of the snippet text (used for deduplication)."""
        return hashlib.sha256(self.code.encode("utf-8")).hexdigest()[:12]

    def with_code(self, code: str, *, mutation: str = "", label_correct: bool | None = None,
                  origin: SnippetOrigin | None = None) -> "CodeSnippet":
        """Return a copy with replaced code (used by mutation operators)."""
        return replace(
            self,
            code=code,
            mutation=mutation or self.mutation,
            label_correct=self.label_correct if label_correct is None else label_correct,
            origin=origin or self.origin,
        )

    def describe(self) -> str:  # pragma: no cover - debugging aid
        status = "correct" if self.label_correct else "incorrect"
        tag = f" [{self.mutation}]" if self.mutation else ""
        return (
            f"<{self.language}/{self.label_model} {self.kernel} "
            f"{status} {self.origin.value}{tag} {self.line_count} lines>"
        )
