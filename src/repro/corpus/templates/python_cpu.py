"""Python templates for the CPU-side models: numpy and Numba.

The numpy templates are vectorised, idiomatic scientific-Python code; the
Numba templates use ``@njit(parallel=True)`` with explicit ``prange`` loops,
which is the style the Numba performance documentation recommends.  Both are
*executable*: the evaluation sandbox runs them (Numba through a no-op JIT
shim) against the numerical oracles in :mod:`repro.kernels`.
"""

from __future__ import annotations

__all__ = ["TEMPLATES"]

# ---------------------------------------------------------------------------
# numpy
# ---------------------------------------------------------------------------

_NUMPY_AXPY = '''import numpy as np


def axpy(a, x, y):
    """AXPY: return a * x + y."""
    return a * x + y
'''

_NUMPY_GEMV = '''import numpy as np


def gemv(A, x):
    """GEMV: return the matrix-vector product A @ x."""
    return np.dot(A, x)
'''

_NUMPY_GEMM = '''import numpy as np


def gemm(A, B):
    """GEMM: return the matrix-matrix product A @ B."""
    return np.matmul(A, B)
'''

_NUMPY_SPMV = '''import numpy as np


def spmv(row_ptr, col_idx, values, x):
    """SpMV: y = A @ x for a CSR matrix given by (row_ptr, col_idx, values)."""
    n = len(row_ptr) - 1
    y = np.zeros(n)
    for i in range(n):
        start = row_ptr[i]
        end = row_ptr[i + 1]
        y[i] = np.dot(values[start:end], x[col_idx[start:end]])
    return y
'''

_NUMPY_JACOBI = '''import numpy as np


def jacobi(u):
    """One 3D Jacobi sweep with fixed boundary values."""
    u_new = u.copy()
    u_new[1:-1, 1:-1, 1:-1] = (
        u[:-2, 1:-1, 1:-1] + u[2:, 1:-1, 1:-1] +
        u[1:-1, :-2, 1:-1] + u[1:-1, 2:, 1:-1] +
        u[1:-1, 1:-1, :-2] + u[1:-1, 1:-1, 2:]
    ) / 6.0
    return u_new
'''

_NUMPY_CG = '''import numpy as np


def cg(A, b, tol=1e-10, max_iter=1000):
    """Solve A x = b for SPD A with the conjugate gradient method."""
    x = np.zeros_like(b)
    r = b - A @ x
    p = r.copy()
    rsold = np.dot(r, r)
    for _ in range(max_iter):
        Ap = A @ p
        alpha = rsold / np.dot(p, Ap)
        x = x + alpha * p
        r = r - alpha * Ap
        rsnew = np.dot(r, r)
        if np.sqrt(rsnew) < tol:
            break
        p = r + (rsnew / rsold) * p
        rsold = rsnew
    return x
'''

# ---------------------------------------------------------------------------
# Numba
# ---------------------------------------------------------------------------

_NUMBA_AXPY = '''import numpy as np
from numba import njit, prange


@njit(parallel=True)
def axpy(a, x, y):
    """AXPY: return a * x + y using a parallel Numba loop."""
    out = np.empty_like(y)
    for i in prange(x.shape[0]):
        out[i] = a * x[i] + y[i]
    return out
'''

_NUMBA_GEMV = '''import numpy as np
from numba import njit, prange


@njit(parallel=True)
def gemv(A, x):
    """GEMV: y = A @ x with one parallel iteration per row."""
    m, n = A.shape
    y = np.zeros(m)
    for i in prange(m):
        s = 0.0
        for j in range(n):
            s += A[i, j] * x[j]
        y[i] = s
    return y
'''

_NUMBA_GEMM = '''import numpy as np
from numba import njit, prange


@njit(parallel=True)
def gemm(A, B):
    """GEMM: C = A @ B with a parallel outer loop."""
    m, k = A.shape
    n = B.shape[1]
    C = np.zeros((m, n))
    for i in prange(m):
        for j in range(n):
            s = 0.0
            for l in range(k):
                s += A[i, l] * B[l, j]
            C[i, j] = s
    return C
'''

_NUMBA_SPMV = '''import numpy as np
from numba import njit, prange


@njit(parallel=True)
def spmv(row_ptr, col_idx, values, x):
    """SpMV: y = A @ x for a CSR matrix, parallel over rows."""
    n = row_ptr.shape[0] - 1
    y = np.zeros(n)
    for i in prange(n):
        s = 0.0
        for j in range(row_ptr[i], row_ptr[i + 1]):
            s += values[j] * x[col_idx[j]]
        y[i] = s
    return y
'''

_NUMBA_JACOBI = '''import numpy as np
from numba import njit, prange


@njit(parallel=True)
def jacobi(u):
    """One 3D Jacobi sweep with fixed boundary values."""
    n = u.shape[0]
    u_new = u.copy()
    for i in prange(1, n - 1):
        for j in range(1, n - 1):
            for k in range(1, n - 1):
                u_new[i, j, k] = (u[i - 1, j, k] + u[i + 1, j, k] +
                                  u[i, j - 1, k] + u[i, j + 1, k] +
                                  u[i, j, k - 1] + u[i, j, k + 1]) / 6.0
    return u_new
'''

_NUMBA_CG = '''import numpy as np
from numba import njit, prange


@njit(parallel=True)
def _matvec(A, p):
    n = A.shape[0]
    Ap = np.zeros(n)
    for i in prange(n):
        s = 0.0
        for j in range(n):
            s += A[i, j] * p[j]
        Ap[i] = s
    return Ap


@njit
def cg(A, b, tol=1e-10, max_iter=1000):
    """Solve A x = b for SPD A with the conjugate gradient method."""
    n = b.shape[0]
    x = np.zeros(n)
    r = b.copy()
    p = r.copy()
    rsold = np.dot(r, r)
    for _ in range(max_iter):
        Ap = _matvec(A, p)
        alpha = rsold / np.dot(p, Ap)
        x = x + alpha * p
        r = r - alpha * Ap
        rsnew = np.dot(r, r)
        if np.sqrt(rsnew) < tol:
            break
        p = r + (rsnew / rsold) * p
        rsold = rsnew
    return x
'''


TEMPLATES: dict[tuple[str, str], str] = {
    ("numpy", "axpy"): _NUMPY_AXPY,
    ("numpy", "gemv"): _NUMPY_GEMV,
    ("numpy", "gemm"): _NUMPY_GEMM,
    ("numpy", "spmv"): _NUMPY_SPMV,
    ("numpy", "jacobi"): _NUMPY_JACOBI,
    ("numpy", "cg"): _NUMPY_CG,
    ("numba", "axpy"): _NUMBA_AXPY,
    ("numba", "gemv"): _NUMBA_GEMV,
    ("numba", "gemm"): _NUMBA_GEMM,
    ("numba", "spmv"): _NUMBA_SPMV,
    ("numba", "jacobi"): _NUMBA_JACOBI,
    ("numba", "cg"): _NUMBA_CG,
}
