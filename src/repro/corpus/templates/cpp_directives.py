"""C++ templates for the directive-based models: OpenMP, OpenMP offload, OpenACC.

The three models share the same serial loop nests and differ only in the
directives placed on them, which is exactly how such code appears in public
repositories (the same textbook loop with a different pragma).  A small
builder keeps the loop bodies in one place; the emitted code for each model
is a complete, self-contained C++ translation unit.
"""

from __future__ import annotations

__all__ = ["TEMPLATES"]


def _axpy(pragma: str, extra_header: str = "") -> str:
    return f"""#include <cstddef>
{extra_header}
// AXPY: y = a * x + y
void axpy(int n, double a, const double *x, double *y)
{{
    {pragma}
    for (int i = 0; i < n; i++) {{
        y[i] = a * x[i] + y[i];
    }}
}}
"""


def _gemv(pragma: str, extra_header: str = "") -> str:
    return f"""#include <cstddef>
{extra_header}
// GEMV: y = A * x for a dense row-major m x n matrix
void gemv(int m, int n, const double *A, const double *x, double *y)
{{
    {pragma}
    for (int i = 0; i < m; i++) {{
        double sum = 0.0;
        for (int j = 0; j < n; j++) {{
            sum += A[i * n + j] * x[j];
        }}
        y[i] = sum;
    }}
}}
"""


def _gemm(pragma_collapse: str, extra_header: str = "") -> str:
    return f"""#include <cstddef>
{extra_header}
// GEMM: C = A * B for dense row-major matrices (m x k) * (k x n)
void gemm(int m, int n, int k, const double *A, const double *B, double *C)
{{
    {pragma_collapse}
    for (int i = 0; i < m; i++) {{
        for (int j = 0; j < n; j++) {{
            double sum = 0.0;
            for (int l = 0; l < k; l++) {{
                sum += A[i * k + l] * B[l * n + j];
            }}
            C[i * n + j] = sum;
        }}
    }}
}}
"""


def _spmv(pragma: str, extra_header: str = "") -> str:
    return f"""#include <cstddef>
{extra_header}
// SpMV: y = A * x for a CSR matrix with n rows
void spmv(int n, const int *row_ptr, const int *col_idx, const double *values,
          const double *x, double *y)
{{
    {pragma}
    for (int i = 0; i < n; i++) {{
        double sum = 0.0;
        for (int j = row_ptr[i]; j < row_ptr[i + 1]; j++) {{
            sum += values[j] * x[col_idx[j]];
        }}
        y[i] = sum;
    }}
}}
"""


def _jacobi(pragma_collapse: str, extra_header: str = "") -> str:
    return f"""#include <cstddef>
{extra_header}
// 3D Jacobi stencil sweep on an n x n x n grid with fixed boundaries
void jacobi(int n, const double *u, double *u_new)
{{
    {pragma_collapse}
    for (int i = 1; i < n - 1; i++) {{
        for (int j = 1; j < n - 1; j++) {{
            for (int k = 1; k < n - 1; k++) {{
                int idx = i * n * n + j * n + k;
                u_new[idx] = (u[(i - 1) * n * n + j * n + k] +
                              u[(i + 1) * n * n + j * n + k] +
                              u[i * n * n + (j - 1) * n + k] +
                              u[i * n * n + (j + 1) * n + k] +
                              u[i * n * n + j * n + (k - 1)] +
                              u[i * n * n + j * n + (k + 1)]) / 6.0;
            }}
        }}
    }}
}}
"""


def _cg(pragma: str, pragma_reduction: str, extra_header: str = "") -> str:
    return f"""#include <cmath>
#include <vector>
{extra_header}
// Conjugate gradient solve of A x = b for a dense SPD n x n matrix
void cg(int n, const double *A, const double *b, double *x, int max_iter, double tol)
{{
    std::vector<double> r(n), p(n), Ap(n);
    for (int i = 0; i < n; i++) {{
        x[i] = 0.0;
        r[i] = b[i];
        p[i] = r[i];
    }}
    double rsold = 0.0;
    {pragma_reduction.replace("REDVAR", "rsold")}
    for (int i = 0; i < n; i++) {{
        rsold += r[i] * r[i];
    }}
    for (int iter = 0; iter < max_iter; iter++) {{
        {pragma}
        for (int i = 0; i < n; i++) {{
            double sum = 0.0;
            for (int j = 0; j < n; j++) {{
                sum += A[i * n + j] * p[j];
            }}
            Ap[i] = sum;
        }}
        double pAp = 0.0;
        {pragma_reduction.replace("REDVAR", "pAp")}
        for (int i = 0; i < n; i++) {{
            pAp += p[i] * Ap[i];
        }}
        double alpha = rsold / pAp;
        {pragma}
        for (int i = 0; i < n; i++) {{
            x[i] += alpha * p[i];
            r[i] -= alpha * Ap[i];
        }}
        double rsnew = 0.0;
        {pragma_reduction.replace("REDVAR", "rsnew")}
        for (int i = 0; i < n; i++) {{
            rsnew += r[i] * r[i];
        }}
        if (std::sqrt(rsnew) < tol) {{
            break;
        }}
        double beta = rsnew / rsold;
        {pragma}
        for (int i = 0; i < n; i++) {{
            p[i] = r[i] + beta * p[i];
        }}
        rsold = rsnew;
    }}
}}
"""


# ---------------------------------------------------------------------------
# OpenMP (CPU threads)
# ---------------------------------------------------------------------------

_OMP_HEADER = "#include <omp.h>"
_OMP_FOR = "#pragma omp parallel for"
_OMP_FOR_2 = "#pragma omp parallel for collapse(2)"
_OMP_FOR_3 = "#pragma omp parallel for collapse(3)"
_OMP_RED = "#pragma omp parallel for reduction(+:REDVAR)"

# ---------------------------------------------------------------------------
# OpenMP target offload (GPU)
# ---------------------------------------------------------------------------

_OMP_TGT = "#pragma omp target teams distribute parallel for"
_OMP_TGT_2 = "#pragma omp target teams distribute parallel for collapse(2)"
_OMP_TGT_3 = "#pragma omp target teams distribute parallel for collapse(3)"
_OMP_TGT_RED = "#pragma omp target teams distribute parallel for reduction(+:REDVAR)"

_OMP_TGT_AXPY = "#pragma omp target teams distribute parallel for map(to: x[0:n]) map(tofrom: y[0:n])"
_OMP_TGT_GEMV = (
    "#pragma omp target teams distribute parallel for map(to: A[0:m*n], x[0:n]) map(from: y[0:m])"
)
_OMP_TGT_GEMM = (
    "#pragma omp target teams distribute parallel for collapse(2) "
    "map(to: A[0:m*k], B[0:k*n]) map(from: C[0:m*n])"
)
_OMP_TGT_SPMV = (
    "#pragma omp target teams distribute parallel for "
    "map(to: row_ptr[0:n+1], col_idx[0:row_ptr[n]], values[0:row_ptr[n]], x[0:n]) map(from: y[0:n])"
)
_OMP_TGT_JACOBI = (
    "#pragma omp target teams distribute parallel for collapse(3) "
    "map(to: u[0:n*n*n]) map(from: u_new[0:n*n*n])"
)

# ---------------------------------------------------------------------------
# OpenACC
# ---------------------------------------------------------------------------

_ACC_LOOP = "#pragma acc parallel loop"
_ACC_LOOP_2 = "#pragma acc parallel loop collapse(2)"
_ACC_LOOP_3 = "#pragma acc parallel loop collapse(3)"
_ACC_RED = "#pragma acc parallel loop reduction(+:REDVAR)"

_ACC_AXPY = "#pragma acc parallel loop copyin(x[0:n]) copy(y[0:n])"
_ACC_GEMV = "#pragma acc parallel loop copyin(A[0:m*n], x[0:n]) copyout(y[0:m])"
_ACC_GEMM = "#pragma acc parallel loop collapse(2) copyin(A[0:m*k], B[0:k*n]) copyout(C[0:m*n])"
_ACC_SPMV = (
    "#pragma acc parallel loop copyin(row_ptr[0:n+1], col_idx[0:row_ptr[n]], "
    "values[0:row_ptr[n]], x[0:n]) copyout(y[0:n])"
)
_ACC_JACOBI = "#pragma acc parallel loop collapse(3) copyin(u[0:n*n*n]) copyout(u_new[0:n*n*n])"


TEMPLATES: dict[tuple[str, str], str] = {
    # -- OpenMP ------------------------------------------------------------
    ("openmp", "axpy"): _axpy(_OMP_FOR, _OMP_HEADER),
    ("openmp", "gemv"): _gemv(_OMP_FOR, _OMP_HEADER),
    ("openmp", "gemm"): _gemm(_OMP_FOR_2, _OMP_HEADER),
    ("openmp", "spmv"): _spmv(_OMP_FOR, _OMP_HEADER),
    ("openmp", "jacobi"): _jacobi(_OMP_FOR_3, _OMP_HEADER),
    ("openmp", "cg"): _cg(_OMP_FOR, _OMP_RED, _OMP_HEADER),
    # -- OpenMP offload ------------------------------------------------------
    ("openmp_offload", "axpy"): _axpy(_OMP_TGT_AXPY, _OMP_HEADER),
    ("openmp_offload", "gemv"): _gemv(_OMP_TGT_GEMV, _OMP_HEADER),
    ("openmp_offload", "gemm"): _gemm(_OMP_TGT_GEMM, _OMP_HEADER),
    ("openmp_offload", "spmv"): _spmv(_OMP_TGT_SPMV, _OMP_HEADER),
    ("openmp_offload", "jacobi"): _jacobi(_OMP_TGT_JACOBI, _OMP_HEADER),
    ("openmp_offload", "cg"): _cg(_OMP_TGT, _OMP_TGT_RED, _OMP_HEADER),
    # -- OpenACC --------------------------------------------------------------
    ("openacc", "axpy"): _axpy(_ACC_AXPY),
    ("openacc", "gemv"): _gemv(_ACC_GEMV),
    ("openacc", "gemm"): _gemm(_ACC_GEMM),
    ("openacc", "spmv"): _spmv(_ACC_SPMV),
    ("openacc", "jacobi"): _jacobi(_ACC_JACOBI),
    ("openacc", "cg"): _cg(_ACC_LOOP, _ACC_RED),
}
