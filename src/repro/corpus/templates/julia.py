"""Julia templates: Threads, CUDA.jl, AMDGPU.jl and KernelAbstractions.jl.

The Threads templates use ``Threads.@threads`` loops from Julia Base; the
GPU templates follow the canonical kernel-programming style of CUDA.jl
(``@cuda`` launches with ``threadIdx``/``blockIdx``), AMDGPU.jl (``@roc``
with ``workitemIdx``/``workgroupIdx``) and KernelAbstractions.jl
(``@kernel`` functions with ``@index``).
"""

from __future__ import annotations

__all__ = ["TEMPLATES"]

# ---------------------------------------------------------------------------
# Threads (Julia Base)
# ---------------------------------------------------------------------------

_THREADS_AXPY = """# AXPY: y = a * x + y
function axpy!(a, x, y)
    Threads.@threads for i in eachindex(x)
        y[i] = a * x[i] + y[i]
    end
    return y
end
"""

_THREADS_GEMV = """# GEMV: y = A * x
function gemv!(A, x, y)
    m, n = size(A)
    Threads.@threads for i in 1:m
        s = 0.0
        for j in 1:n
            s += A[i, j] * x[j]
        end
        y[i] = s
    end
    return y
end
"""

_THREADS_GEMM = """# GEMM: C = A * B
function gemm!(A, B, C)
    m, k = size(A)
    n = size(B, 2)
    Threads.@threads for i in 1:m
        for j in 1:n
            s = 0.0
            for l in 1:k
                s += A[i, l] * B[l, j]
            end
            C[i, j] = s
        end
    end
    return C
end
"""

_THREADS_SPMV = """# SpMV: y = A * x for a CSR matrix
function spmv!(row_ptr, col_idx, values, x, y)
    n = length(row_ptr) - 1
    Threads.@threads for i in 1:n
        s = 0.0
        for j in row_ptr[i]:(row_ptr[i + 1] - 1)
            s += values[j] * x[col_idx[j]]
        end
        y[i] = s
    end
    return y
end
"""

_THREADS_JACOBI = """# 3D Jacobi stencil sweep with fixed boundaries
function jacobi!(u, u_new)
    n = size(u, 1)
    Threads.@threads for i in 2:(n - 1)
        for j in 2:(n - 1)
            for k in 2:(n - 1)
                u_new[i, j, k] = (u[i - 1, j, k] + u[i + 1, j, k] +
                                  u[i, j - 1, k] + u[i, j + 1, k] +
                                  u[i, j, k - 1] + u[i, j, k + 1]) / 6.0
            end
        end
    end
    return u_new
end
"""

_THREADS_CG = """using LinearAlgebra

# Conjugate gradient solve of A x = b for a dense SPD matrix
function matvec!(A, p, Ap)
    n = size(A, 1)
    Threads.@threads for i in 1:n
        s = 0.0
        for j in 1:n
            s += A[i, j] * p[j]
        end
        Ap[i] = s
    end
    return Ap
end

function cg(A, b; tol=1e-10, maxiter=1000)
    n = length(b)
    x = zeros(n)
    r = copy(b)
    p = copy(r)
    Ap = zeros(n)
    rsold = dot(r, r)
    for iter in 1:maxiter
        matvec!(A, p, Ap)
        alpha = rsold / dot(p, Ap)
        x .+= alpha .* p
        r .-= alpha .* Ap
        rsnew = dot(r, r)
        if sqrt(rsnew) < tol
            break
        end
        p .= r .+ (rsnew / rsold) .* p
        rsold = rsnew
    end
    return x
end
"""

# ---------------------------------------------------------------------------
# CUDA.jl
# ---------------------------------------------------------------------------

_CUDA_AXPY = """using CUDA

# AXPY: y = a * x + y
function axpy_kernel!(n, a, x, y)
    i = (blockIdx().x - 1) * blockDim().x + threadIdx().x
    if i <= n
        y[i] = a * x[i] + y[i]
    end
    return nothing
end

function axpy!(a, x, y)
    n = length(x)
    threads = 256
    blocks = cld(n, threads)
    @cuda threads=threads blocks=blocks axpy_kernel!(n, a, x, y)
    return y
end
"""

_CUDA_GEMV = """using CUDA

# GEMV: y = A * x, one thread per row
function gemv_kernel!(m, n, A, x, y)
    i = (blockIdx().x - 1) * blockDim().x + threadIdx().x
    if i <= m
        s = 0.0
        for j in 1:n
            s += A[i, j] * x[j]
        end
        y[i] = s
    end
    return nothing
end

function gemv!(A, x, y)
    m, n = size(A)
    threads = 256
    blocks = cld(m, threads)
    @cuda threads=threads blocks=blocks gemv_kernel!(m, n, A, x, y)
    return y
end
"""

_CUDA_GEMM = """using CUDA

# GEMM: C = A * B, one thread per output element
function gemm_kernel!(m, n, k, A, B, C)
    i = (blockIdx().y - 1) * blockDim().y + threadIdx().y
    j = (blockIdx().x - 1) * blockDim().x + threadIdx().x
    if i <= m && j <= n
        s = 0.0
        for l in 1:k
            s += A[i, l] * B[l, j]
        end
        C[i, j] = s
    end
    return nothing
end

function gemm!(A, B, C)
    m, k = size(A)
    n = size(B, 2)
    threads = (16, 16)
    blocks = (cld(n, 16), cld(m, 16))
    @cuda threads=threads blocks=blocks gemm_kernel!(m, n, k, A, B, C)
    return C
end
"""

_CUDA_SPMV = """using CUDA

# SpMV: y = A * x for a CSR matrix, one thread per row
function spmv_kernel!(n, row_ptr, col_idx, values, x, y)
    i = (blockIdx().x - 1) * blockDim().x + threadIdx().x
    if i <= n
        s = 0.0
        for j in row_ptr[i]:(row_ptr[i + 1] - 1)
            s += values[j] * x[col_idx[j]]
        end
        y[i] = s
    end
    return nothing
end

function spmv!(row_ptr, col_idx, values, x, y)
    n = length(row_ptr) - 1
    threads = 256
    blocks = cld(n, threads)
    @cuda threads=threads blocks=blocks spmv_kernel!(n, row_ptr, col_idx, values, x, y)
    return y
end
"""

_CUDA_JACOBI = """using CUDA

# 3D Jacobi stencil sweep, one thread per interior point
function jacobi_kernel!(n, u, u_new)
    i = (blockIdx().z - 1) * blockDim().z + threadIdx().z
    j = (blockIdx().y - 1) * blockDim().y + threadIdx().y
    k = (blockIdx().x - 1) * blockDim().x + threadIdx().x
    if 2 <= i <= n - 1 && 2 <= j <= n - 1 && 2 <= k <= n - 1
        u_new[i, j, k] = (u[i - 1, j, k] + u[i + 1, j, k] +
                          u[i, j - 1, k] + u[i, j + 1, k] +
                          u[i, j, k - 1] + u[i, j, k + 1]) / 6.0
    end
    return nothing
end

function jacobi!(u, u_new)
    n = size(u, 1)
    threads = (8, 8, 4)
    blocks = (cld(n, 8), cld(n, 8), cld(n, 4))
    @cuda threads=threads blocks=blocks jacobi_kernel!(n, u, u_new)
    return u_new
end
"""

_CUDA_CG = """using CUDA
using LinearAlgebra

# Conjugate gradient solve of A x = b for a dense SPD matrix on the GPU
function cg(A, b; tol=1e-10, maxiter=1000)
    A_d = CuArray(A)
    b_d = CuArray(b)
    x = CUDA.zeros(Float64, length(b))
    r = b_d - A_d * x
    p = copy(r)
    rsold = dot(r, r)
    for iter in 1:maxiter
        Ap = A_d * p
        alpha = rsold / dot(p, Ap)
        x .+= alpha .* p
        r .-= alpha .* Ap
        rsnew = dot(r, r)
        if sqrt(rsnew) < tol
            break
        end
        p .= r .+ (rsnew / rsold) .* p
        rsold = rsnew
    end
    return Array(x)
end
"""

# ---------------------------------------------------------------------------
# AMDGPU.jl
# ---------------------------------------------------------------------------

_AMDGPU_AXPY = """using AMDGPU

# AXPY: y = a * x + y
function axpy_kernel!(n, a, x, y)
    i = (workgroupIdx().x - 1) * workgroupDim().x + workitemIdx().x
    if i <= n
        y[i] = a * x[i] + y[i]
    end
    return nothing
end

function axpy!(a, x, y)
    n = length(x)
    groupsize = 256
    gridsize = cld(n, groupsize)
    @roc groupsize=groupsize gridsize=gridsize axpy_kernel!(n, a, x, y)
    return y
end
"""

_AMDGPU_GEMV = """using AMDGPU

# GEMV: y = A * x, one work-item per row
function gemv_kernel!(m, n, A, x, y)
    i = (workgroupIdx().x - 1) * workgroupDim().x + workitemIdx().x
    if i <= m
        s = 0.0
        for j in 1:n
            s += A[i, j] * x[j]
        end
        y[i] = s
    end
    return nothing
end

function gemv!(A, x, y)
    m, n = size(A)
    groupsize = 256
    gridsize = cld(m, groupsize)
    @roc groupsize=groupsize gridsize=gridsize gemv_kernel!(m, n, A, x, y)
    return y
end
"""

_AMDGPU_GEMM = """using AMDGPU

# GEMM: C = A * B, one work-item per output element
function gemm_kernel!(m, n, k, A, B, C)
    i = (workgroupIdx().y - 1) * workgroupDim().y + workitemIdx().y
    j = (workgroupIdx().x - 1) * workgroupDim().x + workitemIdx().x
    if i <= m && j <= n
        s = 0.0
        for l in 1:k
            s += A[i, l] * B[l, j]
        end
        C[i, j] = s
    end
    return nothing
end

function gemm!(A, B, C)
    m, k = size(A)
    n = size(B, 2)
    groupsize = (16, 16)
    gridsize = (cld(n, 16), cld(m, 16))
    @roc groupsize=groupsize gridsize=gridsize gemm_kernel!(m, n, k, A, B, C)
    return C
end
"""

_AMDGPU_SPMV = """using AMDGPU

# SpMV: y = A * x for a CSR matrix, one work-item per row
function spmv_kernel!(n, row_ptr, col_idx, values, x, y)
    i = (workgroupIdx().x - 1) * workgroupDim().x + workitemIdx().x
    if i <= n
        s = 0.0
        for j in row_ptr[i]:(row_ptr[i + 1] - 1)
            s += values[j] * x[col_idx[j]]
        end
        y[i] = s
    end
    return nothing
end

function spmv!(row_ptr, col_idx, values, x, y)
    n = length(row_ptr) - 1
    groupsize = 256
    gridsize = cld(n, groupsize)
    @roc groupsize=groupsize gridsize=gridsize spmv_kernel!(n, row_ptr, col_idx, values, x, y)
    return y
end
"""

_AMDGPU_JACOBI = """using AMDGPU

# 3D Jacobi stencil sweep, one work-item per interior point
function jacobi_kernel!(n, u, u_new)
    i = (workgroupIdx().z - 1) * workgroupDim().z + workitemIdx().z
    j = (workgroupIdx().y - 1) * workgroupDim().y + workitemIdx().y
    k = (workgroupIdx().x - 1) * workgroupDim().x + workitemIdx().x
    if 2 <= i <= n - 1 && 2 <= j <= n - 1 && 2 <= k <= n - 1
        u_new[i, j, k] = (u[i - 1, j, k] + u[i + 1, j, k] +
                          u[i, j - 1, k] + u[i, j + 1, k] +
                          u[i, j, k - 1] + u[i, j, k + 1]) / 6.0
    end
    return nothing
end

function jacobi!(u, u_new)
    n = size(u, 1)
    groupsize = (8, 8, 4)
    gridsize = (cld(n, 8), cld(n, 8), cld(n, 4))
    @roc groupsize=groupsize gridsize=gridsize jacobi_kernel!(n, u, u_new)
    return u_new
end
"""

_AMDGPU_CG = """using AMDGPU
using LinearAlgebra

# Conjugate gradient solve of A x = b for a dense SPD matrix on an AMD GPU
function cg(A, b; tol=1e-10, maxiter=1000)
    A_d = ROCArray(A)
    b_d = ROCArray(b)
    x = AMDGPU.zeros(Float64, length(b))
    r = b_d - A_d * x
    p = copy(r)
    rsold = dot(r, r)
    for iter in 1:maxiter
        Ap = A_d * p
        alpha = rsold / dot(p, Ap)
        x .+= alpha .* p
        r .-= alpha .* Ap
        rsnew = dot(r, r)
        if sqrt(rsnew) < tol
            break
        end
        p .= r .+ (rsnew / rsold) .* p
        rsold = rsnew
    end
    return Array(x)
end
"""

# ---------------------------------------------------------------------------
# KernelAbstractions.jl
# ---------------------------------------------------------------------------

_KA_AXPY = """using KernelAbstractions

# AXPY: y = a * x + y
@kernel function axpy_kernel!(y, a, @Const(x))
    i = @index(Global)
    y[i] = a * x[i] + y[i]
end

function axpy!(a, x, y; backend=CPU())
    kernel! = axpy_kernel!(backend)
    kernel!(y, a, x; ndrange=length(x))
    KernelAbstractions.synchronize(backend)
    return y
end
"""

_KA_GEMV = """using KernelAbstractions

# GEMV: y = A * x, one work-item per row
@kernel function gemv_kernel!(y, @Const(A), @Const(x), n)
    i = @index(Global)
    s = 0.0
    for j in 1:n
        s += A[i, j] * x[j]
    end
    y[i] = s
end

function gemv!(A, x, y; backend=CPU())
    m, n = size(A)
    kernel! = gemv_kernel!(backend)
    kernel!(y, A, x, n; ndrange=m)
    KernelAbstractions.synchronize(backend)
    return y
end
"""

_KA_GEMM = """using KernelAbstractions

# GEMM: C = A * B, one work-item per output element
@kernel function gemm_kernel!(C, @Const(A), @Const(B), k)
    i, j = @index(Global, NTuple)
    s = 0.0
    for l in 1:k
        s += A[i, l] * B[l, j]
    end
    C[i, j] = s
end

function gemm!(A, B, C; backend=CPU())
    m, k = size(A)
    n = size(B, 2)
    kernel! = gemm_kernel!(backend)
    kernel!(C, A, B, k; ndrange=(m, n))
    KernelAbstractions.synchronize(backend)
    return C
end
"""

_KA_SPMV = """using KernelAbstractions

# SpMV: y = A * x for a CSR matrix, one work-item per row
@kernel function spmv_kernel!(y, @Const(row_ptr), @Const(col_idx), @Const(values), @Const(x))
    i = @index(Global)
    s = 0.0
    for j in row_ptr[i]:(row_ptr[i + 1] - 1)
        s += values[j] * x[col_idx[j]]
    end
    y[i] = s
end

function spmv!(row_ptr, col_idx, values, x, y; backend=CPU())
    n = length(row_ptr) - 1
    kernel! = spmv_kernel!(backend)
    kernel!(y, row_ptr, col_idx, values, x; ndrange=n)
    KernelAbstractions.synchronize(backend)
    return y
end
"""

_KA_JACOBI = """using KernelAbstractions

# 3D Jacobi stencil sweep over the interior points
@kernel function jacobi_kernel!(u_new, @Const(u))
    i, j, k = @index(Global, NTuple)
    i += 1
    j += 1
    k += 1
    u_new[i, j, k] = (u[i - 1, j, k] + u[i + 1, j, k] +
                      u[i, j - 1, k] + u[i, j + 1, k] +
                      u[i, j, k - 1] + u[i, j, k + 1]) / 6.0
end

function jacobi!(u, u_new; backend=CPU())
    n = size(u, 1)
    kernel! = jacobi_kernel!(backend)
    kernel!(u_new, u; ndrange=(n - 2, n - 2, n - 2))
    KernelAbstractions.synchronize(backend)
    return u_new
end
"""

_KA_CG = """using KernelAbstractions
using LinearAlgebra

# Conjugate gradient solve of A x = b with a KernelAbstractions matvec
@kernel function matvec_kernel!(Ap, @Const(A), @Const(p), n)
    i = @index(Global)
    s = 0.0
    for j in 1:n
        s += A[i, j] * p[j]
    end
    Ap[i] = s
end

function cg(A, b; tol=1e-10, maxiter=1000, backend=CPU())
    n = length(b)
    x = zeros(n)
    r = copy(b)
    p = copy(r)
    Ap = zeros(n)
    rsold = dot(r, r)
    kernel! = matvec_kernel!(backend)
    for iter in 1:maxiter
        kernel!(Ap, A, p, n; ndrange=n)
        KernelAbstractions.synchronize(backend)
        alpha = rsold / dot(p, Ap)
        x .+= alpha .* p
        r .-= alpha .* Ap
        rsnew = dot(r, r)
        if sqrt(rsnew) < tol
            break
        end
        p .= r .+ (rsnew / rsold) .* p
        rsold = rsnew
    end
    return x
end
"""


TEMPLATES: dict[tuple[str, str], str] = {
    ("threads", "axpy"): _THREADS_AXPY,
    ("threads", "gemv"): _THREADS_GEMV,
    ("threads", "gemm"): _THREADS_GEMM,
    ("threads", "spmv"): _THREADS_SPMV,
    ("threads", "jacobi"): _THREADS_JACOBI,
    ("threads", "cg"): _THREADS_CG,
    ("cuda", "axpy"): _CUDA_AXPY,
    ("cuda", "gemv"): _CUDA_GEMV,
    ("cuda", "gemm"): _CUDA_GEMM,
    ("cuda", "spmv"): _CUDA_SPMV,
    ("cuda", "jacobi"): _CUDA_JACOBI,
    ("cuda", "cg"): _CUDA_CG,
    ("amdgpu", "axpy"): _AMDGPU_AXPY,
    ("amdgpu", "gemv"): _AMDGPU_GEMV,
    ("amdgpu", "gemm"): _AMDGPU_GEMM,
    ("amdgpu", "spmv"): _AMDGPU_SPMV,
    ("amdgpu", "jacobi"): _AMDGPU_JACOBI,
    ("amdgpu", "cg"): _AMDGPU_CG,
    ("kernelabstractions", "axpy"): _KA_AXPY,
    ("kernelabstractions", "gemv"): _KA_GEMV,
    ("kernelabstractions", "gemm"): _KA_GEMM,
    ("kernelabstractions", "spmv"): _KA_SPMV,
    ("kernelabstractions", "jacobi"): _KA_JACOBI,
    ("kernelabstractions", "cg"): _KA_CG,
}
