"""Python templates for the GPU models: cuPy and pyCUDA.

The paper notes that the *successful* cuPy and pyCUDA suggestions embed a
correct raw CUDA kernel as a user-defined kernel (as documented in the cuPy
``RawKernel`` and pyCUDA ``SourceModule`` examples), so the templates follow
that style where it is idiomatic and fall back to the array API otherwise.

The evaluation sandbox executes these templates against numpy oracles using
the fake GPU runtimes in :mod:`repro.sandbox` — ``cupy`` arrays are backed by
numpy and ``RawKernel``/``SourceModule`` sources run on the miniature CUDA-C
interpreter.
"""

from __future__ import annotations

__all__ = ["TEMPLATES"]

# ---------------------------------------------------------------------------
# cuPy
# ---------------------------------------------------------------------------

_CUPY_AXPY = '''import cupy as cp

_axpy_kernel = cp.RawKernel(r"""
extern "C" __global__
void axpy(const int n, const double a, const double *x, double *y)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
""", "axpy")


def axpy(a, x, y):
    """AXPY: return a * x + y using a raw CUDA kernel."""
    x_gpu = cp.asarray(x)
    y_gpu = cp.asarray(y)
    n = int(x_gpu.size)
    threads = 256
    blocks = (n + threads - 1) // threads
    _axpy_kernel((blocks,), (threads,), (n, float(a), x_gpu, y_gpu))
    return cp.asnumpy(y_gpu)
'''

_CUPY_GEMV = '''import cupy as cp


def gemv(A, x):
    """GEMV: y = A @ x on the GPU."""
    A_gpu = cp.asarray(A)
    x_gpu = cp.asarray(x)
    y_gpu = cp.dot(A_gpu, x_gpu)
    return cp.asnumpy(y_gpu)
'''

_CUPY_GEMM = '''import cupy as cp


def gemm(A, B):
    """GEMM: C = A @ B on the GPU."""
    A_gpu = cp.asarray(A)
    B_gpu = cp.asarray(B)
    C_gpu = cp.matmul(A_gpu, B_gpu)
    return cp.asnumpy(C_gpu)
'''

_CUPY_SPMV = '''import cupy as cp

_spmv_kernel = cp.RawKernel(r"""
extern "C" __global__
void spmv(const int n, const int *row_ptr, const int *col_idx,
          const double *values, const double *x, double *y)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        double sum = 0.0;
        for (int j = row_ptr[i]; j < row_ptr[i + 1]; j++) {
            sum += values[j] * x[col_idx[j]];
        }
        y[i] = sum;
    }
}
""", "spmv")


def spmv(row_ptr, col_idx, values, x):
    """SpMV: y = A @ x for a CSR matrix using a raw CUDA kernel."""
    rp = cp.asarray(row_ptr, dtype=cp.int32)
    ci = cp.asarray(col_idx, dtype=cp.int32)
    v = cp.asarray(values)
    x_gpu = cp.asarray(x)
    n = int(rp.size) - 1
    y_gpu = cp.zeros(n)
    threads = 256
    blocks = (n + threads - 1) // threads
    _spmv_kernel((blocks,), (threads,), (n, rp, ci, v, x_gpu, y_gpu))
    return cp.asnumpy(y_gpu)
'''

_CUPY_JACOBI = '''import cupy as cp


def jacobi(u):
    """One 3D Jacobi sweep with fixed boundary values on the GPU."""
    u_gpu = cp.asarray(u)
    u_new = u_gpu.copy()
    u_new[1:-1, 1:-1, 1:-1] = (
        u_gpu[:-2, 1:-1, 1:-1] + u_gpu[2:, 1:-1, 1:-1] +
        u_gpu[1:-1, :-2, 1:-1] + u_gpu[1:-1, 2:, 1:-1] +
        u_gpu[1:-1, 1:-1, :-2] + u_gpu[1:-1, 1:-1, 2:]
    ) / 6.0
    return cp.asnumpy(u_new)
'''

_CUPY_CG = '''import cupy as cp


def cg(A, b, tol=1e-10, max_iter=1000):
    """Solve A x = b for SPD A with conjugate gradients on the GPU."""
    A_gpu = cp.asarray(A)
    b_gpu = cp.asarray(b)
    x = cp.zeros_like(b_gpu)
    r = b_gpu - cp.dot(A_gpu, x)
    p = r.copy()
    rsold = float(cp.dot(r, r))
    for _ in range(max_iter):
        Ap = cp.dot(A_gpu, p)
        alpha = rsold / float(cp.dot(p, Ap))
        x = x + alpha * p
        r = r - alpha * Ap
        rsnew = float(cp.dot(r, r))
        if rsnew ** 0.5 < tol:
            break
        p = r + (rsnew / rsold) * p
        rsold = rsnew
    return cp.asnumpy(x)
'''

# ---------------------------------------------------------------------------
# pyCUDA
# ---------------------------------------------------------------------------

_PYCUDA_AXPY = '''import numpy as np
import pycuda.autoinit
import pycuda.driver as drv
from pycuda.compiler import SourceModule

_mod = SourceModule("""
__global__ void axpy(const int n, const double a, const double *x, double *y)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
""")
_axpy = _mod.get_function("axpy")


def axpy(a, x, y):
    """AXPY: return a * x + y using a pyCUDA SourceModule kernel."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).copy()
    n = np.int32(x.size)
    threads = 256
    blocks = (x.size + threads - 1) // threads
    _axpy(n, np.float64(a), drv.In(x), drv.InOut(y),
          block=(threads, 1, 1), grid=(blocks, 1))
    return y
'''

_PYCUDA_GEMV = '''import numpy as np
import pycuda.autoinit
import pycuda.driver as drv
from pycuda.compiler import SourceModule

_mod = SourceModule("""
__global__ void gemv(const int m, const int n, const double *A, const double *x, double *y)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < m) {
        double sum = 0.0;
        for (int j = 0; j < n; j++) {
            sum += A[i * n + j] * x[j];
        }
        y[i] = sum;
    }
}
""")
_gemv = _mod.get_function("gemv")


def gemv(A, x):
    """GEMV: y = A @ x using a pyCUDA SourceModule kernel."""
    A = np.ascontiguousarray(A, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    m, n = A.shape
    y = np.zeros(m, dtype=np.float64)
    threads = 256
    blocks = (m + threads - 1) // threads
    _gemv(np.int32(m), np.int32(n), drv.In(A), drv.In(x), drv.Out(y),
          block=(threads, 1, 1), grid=(blocks, 1))
    return y
'''

_PYCUDA_GEMM = '''import numpy as np
import pycuda.autoinit
import pycuda.driver as drv
from pycuda.compiler import SourceModule

_mod = SourceModule("""
__global__ void gemm(const int m, const int n, const int k,
                     const double *A, const double *B, double *C)
{
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < m && j < n) {
        double sum = 0.0;
        for (int l = 0; l < k; l++) {
            sum += A[i * k + l] * B[l * n + j];
        }
        C[i * n + j] = sum;
    }
}
""")
_gemm = _mod.get_function("gemm")


def gemm(A, B):
    """GEMM: C = A @ B using a pyCUDA SourceModule kernel."""
    A = np.ascontiguousarray(A, dtype=np.float64)
    B = np.ascontiguousarray(B, dtype=np.float64)
    m, k = A.shape
    n = B.shape[1]
    C = np.zeros((m, n), dtype=np.float64)
    threads = (16, 16, 1)
    grid = ((n + 15) // 16, (m + 15) // 16)
    _gemm(np.int32(m), np.int32(n), np.int32(k), drv.In(A), drv.In(B), drv.Out(C),
          block=threads, grid=grid)
    return C
'''

_PYCUDA_SPMV = '''import numpy as np
import pycuda.autoinit
import pycuda.driver as drv
from pycuda.compiler import SourceModule

_mod = SourceModule("""
__global__ void spmv(const int n, const int *row_ptr, const int *col_idx,
                     const double *values, const double *x, double *y)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        double sum = 0.0;
        for (int j = row_ptr[i]; j < row_ptr[i + 1]; j++) {
            sum += values[j] * x[col_idx[j]];
        }
        y[i] = sum;
    }
}
""")
_spmv = _mod.get_function("spmv")


def spmv(row_ptr, col_idx, values, x):
    """SpMV: y = A @ x for a CSR matrix using a pyCUDA SourceModule kernel."""
    row_ptr = np.asarray(row_ptr, dtype=np.int32)
    col_idx = np.asarray(col_idx, dtype=np.int32)
    values = np.asarray(values, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    n = row_ptr.size - 1
    y = np.zeros(n, dtype=np.float64)
    threads = 256
    blocks = (n + threads - 1) // threads
    _spmv(np.int32(n), drv.In(row_ptr), drv.In(col_idx), drv.In(values),
          drv.In(x), drv.Out(y), block=(threads, 1, 1), grid=(blocks, 1))
    return y
'''

_PYCUDA_JACOBI = '''import numpy as np
import pycuda.autoinit
import pycuda.driver as drv
from pycuda.compiler import SourceModule

_mod = SourceModule("""
__global__ void jacobi(const int n, const double *u, double *u_new)
{
    int i = blockIdx.z * blockDim.z + threadIdx.z;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    int k = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= 1 && i < n - 1 && j >= 1 && j < n - 1 && k >= 1 && k < n - 1) {
        int idx = i * n * n + j * n + k;
        u_new[idx] = (u[(i - 1) * n * n + j * n + k] +
                      u[(i + 1) * n * n + j * n + k] +
                      u[i * n * n + (j - 1) * n + k] +
                      u[i * n * n + (j + 1) * n + k] +
                      u[i * n * n + j * n + (k - 1)] +
                      u[i * n * n + j * n + (k + 1)]) / 6.0;
    }
}
""")
_jacobi = _mod.get_function("jacobi")


def jacobi(u):
    """One 3D Jacobi sweep using a pyCUDA SourceModule kernel."""
    u = np.ascontiguousarray(u, dtype=np.float64)
    n = u.shape[0]
    u_new = u.copy()
    threads = (4, 4, 4)
    grid = ((n + 3) // 4, (n + 3) // 4, (n + 3) // 4)
    _jacobi(np.int32(n), drv.In(u), drv.InOut(u_new), block=threads, grid=grid)
    return u_new
'''

_PYCUDA_CG = '''import numpy as np
import pycuda.autoinit
import pycuda.driver as drv
from pycuda.compiler import SourceModule

_mod = SourceModule("""
__global__ void matvec(const int n, const double *A, const double *p, double *Ap)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        double sum = 0.0;
        for (int j = 0; j < n; j++) {
            sum += A[i * n + j] * p[j];
        }
        Ap[i] = sum;
    }
}
""")
_matvec = _mod.get_function("matvec")


def cg(A, b, tol=1e-10, max_iter=1000):
    """Solve A x = b for SPD A; the matrix-vector product runs on the GPU."""
    A = np.ascontiguousarray(A, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = b.size
    x = np.zeros(n, dtype=np.float64)
    r = b.copy()
    p = r.copy()
    rsold = float(np.dot(r, r))
    threads = 256
    blocks = (n + threads - 1) // threads
    for _ in range(max_iter):
        Ap = np.zeros(n, dtype=np.float64)
        _matvec(np.int32(n), drv.In(A), drv.In(p), drv.Out(Ap),
                block=(threads, 1, 1), grid=(blocks, 1))
        alpha = rsold / float(np.dot(p, Ap))
        x = x + alpha * p
        r = r - alpha * Ap
        rsnew = float(np.dot(r, r))
        if np.sqrt(rsnew) < tol:
            break
        p = r + (rsnew / rsold) * p
        rsold = rsnew
    return x
'''


TEMPLATES: dict[tuple[str, str], str] = {
    ("cupy", "axpy"): _CUPY_AXPY,
    ("cupy", "gemv"): _CUPY_GEMV,
    ("cupy", "gemm"): _CUPY_GEMM,
    ("cupy", "spmv"): _CUPY_SPMV,
    ("cupy", "jacobi"): _CUPY_JACOBI,
    ("cupy", "cg"): _CUPY_CG,
    ("pycuda", "axpy"): _PYCUDA_AXPY,
    ("pycuda", "gemv"): _PYCUDA_GEMV,
    ("pycuda", "gemm"): _PYCUDA_GEMM,
    ("pycuda", "spmv"): _PYCUDA_SPMV,
    ("pycuda", "jacobi"): _PYCUDA_JACOBI,
    ("pycuda", "cg"): _PYCUDA_CG,
}
