"""Extension templates: the scan/histogram families and the PyKokkos column.

This module is **not** imported by the template index at import time — the
extended grid is opt-in (:func:`repro.extensions.install_extended_grid`
registers these templates), so the stock corpus, and with it every stock
cell's random stream, stays byte-identical to the seed.

Three groups live here:

* ``scan`` (inclusive prefix sum) for the four stock Python models,
* ``histogram`` (atomic bin counts) for the four stock Python models — the
  GPU variants are duplicate scatters through ``atomicAdd``, exercising the
  lockstep engine's atomic modeling for real,
* the PyKokkos column: all eight kernels (six stock + the two new families)
  in ``parallel_for``/``parallel_reduce`` workunit style, executed by
  :mod:`repro.sandbox.fake_kokkos`.

The CUDA launch arithmetic mirrors the stock templates exactly, because the
static-analyzer geometry profiles (:mod:`repro.analysis.hazards`) key on
those canonical fragments.
"""

from __future__ import annotations

__all__ = ["TEMPLATES"]

# ---------------------------------------------------------------------------
# scan — inclusive prefix sum
# ---------------------------------------------------------------------------

_NUMPY_SCAN = '''import numpy as np


def scan(x):
    """Inclusive prefix sum: out[i] = sum(x[0..i])."""
    return np.cumsum(x)
'''

_NUMBA_SCAN = '''import numpy as np
from numba import njit, prange


@njit(parallel=True)
def scan(x):
    """Inclusive prefix sum, one parallel iteration per output element."""
    n = x.shape[0]
    out = np.zeros(n)
    for i in prange(n):
        acc = 0.0
        for j in range(i + 1):
            acc += x[j]
        out[i] = acc
    return out
'''

_CUPY_SCAN = '''import cupy as cp

_scan_kernel = cp.RawKernel(r"""
extern "C" __global__
void scan(const int n, const double *x, double *out)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        double acc = 0.0;
        for (int j = 0; j <= i; j++) {
            acc += x[j];
        }
        out[i] = acc;
    }
}
""", "scan")


def scan(x):
    """Inclusive prefix sum using a raw CUDA kernel."""
    x_gpu = cp.asarray(x)
    n = int(x_gpu.size)
    out = cp.zeros(n)
    threads = 256
    blocks = (n + threads - 1) // threads
    _scan_kernel((blocks,), (threads,), (n, x_gpu, out))
    return cp.asnumpy(out)
'''

_PYCUDA_SCAN = '''import numpy as np
import pycuda.autoinit
import pycuda.driver as drv
from pycuda.compiler import SourceModule

_mod = SourceModule("""
__global__ void scan(const int n, const double *x, double *out)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        double acc = 0.0;
        for (int j = 0; j <= i; j++) {
            acc += x[j];
        }
        out[i] = acc;
    }
}
""")
_scan = _mod.get_function("scan")


def scan(x):
    """Inclusive prefix sum using a pyCUDA SourceModule kernel."""
    x = np.asarray(x, dtype=np.float64)
    n = np.int32(x.size)
    out = np.zeros(x.size, dtype=np.float64)
    threads = 256
    blocks = (x.size + threads - 1) // threads
    _scan(n, drv.In(x), drv.Out(out), block=(threads, 1, 1), grid=(blocks, 1))
    return out
'''

_KOKKOS_SCAN = '''import numpy as np
import pykokkos as pk


@pk.workunit
def scan_wu(i, x, out):
    acc = 0.0
    for j in range(i + 1):
        acc += x[j]
    out[i] = acc


def scan(x):
    """Inclusive prefix sum with a PyKokkos parallel_for workunit."""
    x_view = pk.from_numpy(np.asarray(x, dtype=np.float64))
    out = pk.from_numpy(np.zeros(x_view.shape[0]))
    pk.parallel_for(x_view.shape[0], scan_wu, x=x_view, out=out)
    return out
'''

# ---------------------------------------------------------------------------
# histogram — atomic bin counts from precomputed int32 bin indices
# ---------------------------------------------------------------------------

_NUMPY_HISTOGRAM = '''import numpy as np


def histogram(bins, nbins):
    """Bin counts: hist[b] = number of i with bins[i] == b."""
    return np.bincount(bins, minlength=nbins).astype(np.float64)
'''

_NUMBA_HISTOGRAM = '''import numpy as np
from numba import njit, prange


@njit(parallel=True)
def histogram(bins, nbins):
    """Bin counts, race-free: one parallel iteration per bin."""
    n = bins.shape[0]
    hist = np.zeros(nbins)
    for b in prange(nbins):
        count = 0.0
        for i in range(n):
            if bins[i] == b:
                count += 1.0
        hist[b] = count
    return hist
'''

_CUPY_HISTOGRAM = '''import cupy as cp

_histogram_kernel = cp.RawKernel(r"""
extern "C" __global__
void histogram(const int n, const int *bins, double *hist)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        atomicAdd(&hist[bins[i]], 1.0);
    }
}
""", "histogram")


def histogram(bins, nbins):
    """Bin counts via atomicAdd in a raw CUDA kernel."""
    b_gpu = cp.asarray(bins, dtype=cp.int32)
    hist = cp.zeros(int(nbins))
    n = int(b_gpu.size)
    threads = 256
    blocks = (n + threads - 1) // threads
    _histogram_kernel((blocks,), (threads,), (n, b_gpu, hist))
    return cp.asnumpy(hist)
'''

_PYCUDA_HISTOGRAM = '''import numpy as np
import pycuda.autoinit
import pycuda.driver as drv
from pycuda.compiler import SourceModule

_mod = SourceModule("""
__global__ void histogram(const int n, const int *bins, double *hist)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        atomicAdd(&hist[bins[i]], 1.0);
    }
}
""")
_histogram = _mod.get_function("histogram")


def histogram(bins, nbins):
    """Bin counts via atomicAdd in a pyCUDA SourceModule kernel."""
    bins = np.asarray(bins, dtype=np.int32)
    hist = np.zeros(int(nbins), dtype=np.float64)
    n = np.int32(bins.size)
    threads = 256
    blocks = (bins.size + threads - 1) // threads
    _histogram(n, drv.In(bins), drv.InOut(hist),
               block=(threads, 1, 1), grid=(blocks, 1))
    return hist
'''

_KOKKOS_HISTOGRAM = '''import numpy as np
import pykokkos as pk


@pk.workunit
def histogram_wu(i, bins, hist):
    pk.atomic_add(hist, [bins[i]], 1.0)


def histogram(bins, nbins):
    """Bin counts with pk.atomic_add inside a parallel_for workunit."""
    b_view = pk.from_numpy(np.asarray(bins, dtype=np.int32))
    hist = pk.from_numpy(np.zeros(int(nbins)))
    pk.parallel_for(b_view.shape[0], histogram_wu, bins=b_view, hist=hist)
    return hist
'''

# ---------------------------------------------------------------------------
# PyKokkos — the six stock kernels in workunit style
# ---------------------------------------------------------------------------

_KOKKOS_AXPY = '''import numpy as np
import pykokkos as pk


@pk.workunit
def axpy_wu(i, a, x, y):
    y[i] = a * x[i] + y[i]


def axpy(a, x, y):
    """AXPY: return a * x + y with a PyKokkos parallel_for workunit."""
    x_view = pk.from_numpy(np.asarray(x, dtype=np.float64))
    y_view = pk.from_numpy(np.asarray(y, dtype=np.float64).copy())
    pk.parallel_for(x_view.shape[0], axpy_wu, a=float(a), x=x_view, y=y_view)
    return y_view
'''

_KOKKOS_GEMV = '''import numpy as np
import pykokkos as pk


@pk.workunit
def gemv_wu(i, A, x, y):
    s = 0.0
    for j in range(A.shape[1]):
        s += A[i, j] * x[j]
    y[i] = s


def gemv(A, x):
    """GEMV: y = A @ x, one workunit per row."""
    A_view = pk.from_numpy(np.asarray(A, dtype=np.float64))
    x_view = pk.from_numpy(np.asarray(x, dtype=np.float64))
    y = pk.from_numpy(np.zeros(A_view.shape[0]))
    pk.parallel_for(A_view.shape[0], gemv_wu, A=A_view, x=x_view, y=y)
    return y
'''

_KOKKOS_GEMM = '''import numpy as np
import pykokkos as pk


@pk.workunit
def gemm_wu(i, A, B, C):
    for j in range(B.shape[1]):
        s = 0.0
        for l in range(A.shape[1]):
            s += A[i, l] * B[l, j]
        C[i, j] = s


def gemm(A, B):
    """GEMM: C = A @ B, one workunit per output row."""
    A_view = pk.from_numpy(np.asarray(A, dtype=np.float64))
    B_view = pk.from_numpy(np.asarray(B, dtype=np.float64))
    C = pk.from_numpy(np.zeros((A_view.shape[0], B_view.shape[1])))
    pk.parallel_for(A_view.shape[0], gemm_wu, A=A_view, B=B_view, C=C)
    return C
'''

_KOKKOS_SPMV = '''import numpy as np
import pykokkos as pk


@pk.workunit
def spmv_wu(i, row_ptr, col_idx, values, x, y):
    s = 0.0
    for j in range(row_ptr[i], row_ptr[i + 1]):
        s += values[j] * x[col_idx[j]]
    y[i] = s


def spmv(row_ptr, col_idx, values, x):
    """SpMV: y = A @ x for a CSR matrix, one workunit per row."""
    rp = pk.from_numpy(np.asarray(row_ptr, dtype=np.int32))
    ci = pk.from_numpy(np.asarray(col_idx, dtype=np.int32))
    v = pk.from_numpy(np.asarray(values, dtype=np.float64))
    x_view = pk.from_numpy(np.asarray(x, dtype=np.float64))
    y = pk.from_numpy(np.zeros(rp.shape[0] - 1))
    pk.parallel_for(rp.shape[0] - 1, spmv_wu,
                    row_ptr=rp, col_idx=ci, values=v, x=x_view, y=y)
    return y
'''

_KOKKOS_JACOBI = '''import numpy as np
import pykokkos as pk


@pk.workunit
def jacobi_wu(i, u, u_new):
    n = u.shape[0]
    for j in range(1, n - 1):
        for k in range(1, n - 1):
            u_new[i, j, k] = (u[i - 1, j, k] + u[i + 1, j, k] +
                              u[i, j - 1, k] + u[i, j + 1, k] +
                              u[i, j, k - 1] + u[i, j, k + 1]) / 6.0


def jacobi(u):
    """One 3D Jacobi sweep, one workunit per interior plane."""
    u_view = pk.from_numpy(np.asarray(u, dtype=np.float64))
    u_new = pk.from_numpy(u_view.copy())
    pk.parallel_for(range(1, u_view.shape[0] - 1), jacobi_wu, u=u_view, u_new=u_new)
    return u_new
'''

_KOKKOS_CG = '''import numpy as np
import pykokkos as pk


@pk.workunit
def matvec_wu(i, A, p, Ap):
    s = 0.0
    for j in range(A.shape[1]):
        s += A[i, j] * p[j]
    Ap[i] = s


@pk.workunit
def dot_wu(i, acc, a, b):
    acc += a[i] * b[i]


def cg(A, b, tol=1e-10, max_iter=1000):
    """Solve A x = b for SPD A; matvec and dot products are workunits."""
    A_view = pk.from_numpy(np.asarray(A, dtype=np.float64))
    b_view = pk.from_numpy(np.asarray(b, dtype=np.float64))
    n = b_view.shape[0]
    x = np.zeros(n)
    r = b_view.copy()
    p = r.copy()
    rsold = pk.parallel_reduce(n, dot_wu, a=r, b=r)
    for _ in range(max_iter):
        Ap = pk.from_numpy(np.zeros(n))
        pk.parallel_for(n, matvec_wu, A=A_view, p=p, Ap=Ap)
        alpha = rsold / pk.parallel_reduce(n, dot_wu, a=p, b=Ap)
        x = x + alpha * p
        r = r - alpha * Ap
        rsnew = pk.parallel_reduce(n, dot_wu, a=r, b=r)
        if rsnew ** 0.5 < tol:
            break
        p = r + (rsnew / rsold) * p
        rsold = rsnew
    return x
'''


TEMPLATES: dict[tuple[str, str], str] = {
    ("numpy", "scan"): _NUMPY_SCAN,
    ("numba", "scan"): _NUMBA_SCAN,
    ("cupy", "scan"): _CUPY_SCAN,
    ("pycuda", "scan"): _PYCUDA_SCAN,
    ("kokkos", "scan"): _KOKKOS_SCAN,
    ("numpy", "histogram"): _NUMPY_HISTOGRAM,
    ("numba", "histogram"): _NUMBA_HISTOGRAM,
    ("cupy", "histogram"): _CUPY_HISTOGRAM,
    ("pycuda", "histogram"): _PYCUDA_HISTOGRAM,
    ("kokkos", "histogram"): _KOKKOS_HISTOGRAM,
    ("kokkos", "axpy"): _KOKKOS_AXPY,
    ("kokkos", "gemv"): _KOKKOS_GEMV,
    ("kokkos", "gemm"): _KOKKOS_GEMM,
    ("kokkos", "spmv"): _KOKKOS_SPMV,
    ("kokkos", "jacobi"): _KOKKOS_JACOBI,
    ("kokkos", "cg"): _KOKKOS_CG,
}
