"""Correct reference templates for every (kernel, language, model) cell.

Each template is the idiomatic implementation an experienced user of the
programming model would write for the kernel — the kind of code that existed
in public repositories (tutorials, benchmark suites such as HeCBench, library
documentation) and that Copilot's best suggestions in the paper reproduce.

The templates are the ground truth of the corpus: the mutation operators in
:mod:`repro.corpus.mutations` derive every incorrect variant from them, and
the analyzers in :mod:`repro.analysis` are tested against both.

Lookup API
----------

``get_template(language, model_short, kernel)`` returns the code string;
``has_template`` and ``iter_templates`` enumerate availability.  Model keys
are the *short* model names (``"openmp"``, ``"cuda"``, ...), i.e. the uid
without the language prefix.
"""

from __future__ import annotations

from typing import Iterator

from repro.corpus.templates import cpp_directives, cpp_gpu, cpp_portable, fortran, julia
from repro.corpus.templates import python_cpu, python_gpu

__all__ = [
    "get_template",
    "has_template",
    "iter_templates",
    "register_templates",
    "unregister_templates",
    "TEMPLATE_INDEX",
]

#: Combined template index: {(language, model_short, kernel): code}.
TEMPLATE_INDEX: dict[tuple[str, str, str], str] = {}

for _module, _language in (
    (cpp_directives, "cpp"),
    (cpp_gpu, "cpp"),
    (cpp_portable, "cpp"),
    (fortran, "fortran"),
    (python_cpu, "python"),
    (python_gpu, "python"),
    (julia, "julia"),
):
    for (_model, _kernel), _code in _module.TEMPLATES.items():
        key = (_language, _model, _kernel)
        if key in TEMPLATE_INDEX:  # pragma: no cover - guards template collisions
            raise RuntimeError(f"duplicate template for {key}")
        TEMPLATE_INDEX[key] = _code


def register_templates(language: str, templates: dict[tuple[str, str], str]) -> None:
    """Add extension templates keyed ``(model_short, kernel)`` (idempotent).

    Registering a key that already maps to *different* code is an error —
    the same collision guard the import-time index build applies.  Callers
    must invalidate :func:`repro.corpus.store.default_corpus` afterwards
    (the :mod:`repro.extensions` installer does).
    """
    language = language.lower()
    for (model, kernel), code in templates.items():
        key = (language, model.lower(), kernel.lower())
        existing = TEMPLATE_INDEX.get(key)
        if existing is not None and existing != code:
            raise RuntimeError(f"duplicate template for {key}")
        TEMPLATE_INDEX[key] = code


def unregister_templates(language: str, keys: "Iterator[tuple[str, str]] | list[tuple[str, str]]") -> None:
    """Remove extension templates by ``(model_short, kernel)`` key (idempotent)."""
    language = language.lower()
    for model, kernel in keys:
        TEMPLATE_INDEX.pop((language, model.lower(), kernel.lower()), None)


def get_template(language: str, model_short: str, kernel: str) -> str:
    """Return the correct template for a (language, model, kernel) cell."""
    key = (language.lower(), model_short.lower(), kernel.lower())
    try:
        return TEMPLATE_INDEX[key]
    except KeyError:
        raise KeyError(f"no template for language={language!r} model={model_short!r} kernel={kernel!r}") from None


def has_template(language: str, model_short: str, kernel: str) -> bool:
    """Whether a template exists for the cell."""
    return (language.lower(), model_short.lower(), kernel.lower()) in TEMPLATE_INDEX


def iter_templates() -> Iterator[tuple[str, str, str, str]]:
    """Iterate ``(language, model_short, kernel, code)`` over all templates."""
    for (language, model, kernel), code in sorted(TEMPLATE_INDEX.items()):
        yield language, model, kernel, code
