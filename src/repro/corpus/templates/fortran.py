"""Fortran templates: OpenMP, OpenMP offload and OpenACC subroutines.

Fortran is 1-based and column-major; the templates use the canonical
``do i = 1, n`` loops and directive sentinels (``!$omp`` / ``!$acc``) that
legacy HPC codes use, wrapped in ``subroutine`` / ``end subroutine`` blocks —
the code keyword the paper found essential for good Fortran prompts.
"""

from __future__ import annotations

__all__ = ["TEMPLATES"]


def _axpy(open_directive: str, close_directive: str) -> str:
    return f"""! AXPY: y = a * x + y
subroutine axpy(n, a, x, y)
    implicit none
    integer, intent(in) :: n
    real(8), intent(in) :: a
    real(8), intent(in) :: x(n)
    real(8), intent(inout) :: y(n)
    integer :: i
    {open_directive}
    do i = 1, n
        y(i) = a * x(i) + y(i)
    end do
    {close_directive}
end subroutine axpy
"""


def _gemv(open_directive: str, close_directive: str) -> str:
    return f"""! GEMV: y = A * x for an m x n matrix
subroutine gemv(m, n, A, x, y)
    implicit none
    integer, intent(in) :: m, n
    real(8), intent(in) :: A(m, n)
    real(8), intent(in) :: x(n)
    real(8), intent(out) :: y(m)
    integer :: i, j
    real(8) :: sum
    {open_directive}
    do i = 1, m
        sum = 0.0d0
        do j = 1, n
            sum = sum + A(i, j) * x(j)
        end do
        y(i) = sum
    end do
    {close_directive}
end subroutine gemv
"""


def _gemm(open_directive: str, close_directive: str) -> str:
    return f"""! GEMM: C = A * B for (m x k) * (k x n) matrices
subroutine gemm(m, n, k, A, B, C)
    implicit none
    integer, intent(in) :: m, n, k
    real(8), intent(in) :: A(m, k)
    real(8), intent(in) :: B(k, n)
    real(8), intent(out) :: C(m, n)
    integer :: i, j, l
    real(8) :: sum
    {open_directive}
    do j = 1, n
        do i = 1, m
            sum = 0.0d0
            do l = 1, k
                sum = sum + A(i, l) * B(l, j)
            end do
            C(i, j) = sum
        end do
    end do
    {close_directive}
end subroutine gemm
"""


def _spmv(open_directive: str, close_directive: str) -> str:
    return f"""! SpMV: y = A * x for a CSR matrix with n rows
subroutine spmv(n, row_ptr, col_idx, values, x, y)
    implicit none
    integer, intent(in) :: n
    integer, intent(in) :: row_ptr(n + 1)
    integer, intent(in) :: col_idx(*)
    real(8), intent(in) :: values(*)
    real(8), intent(in) :: x(n)
    real(8), intent(out) :: y(n)
    integer :: i, j
    real(8) :: sum
    {open_directive}
    do i = 1, n
        sum = 0.0d0
        do j = row_ptr(i), row_ptr(i + 1) - 1
            sum = sum + values(j) * x(col_idx(j))
        end do
        y(i) = sum
    end do
    {close_directive}
end subroutine spmv
"""


def _jacobi(open_directive: str, close_directive: str) -> str:
    return f"""! 3D Jacobi stencil sweep on an n x n x n grid with fixed boundaries
subroutine jacobi(n, u, u_new)
    implicit none
    integer, intent(in) :: n
    real(8), intent(in) :: u(n, n, n)
    real(8), intent(out) :: u_new(n, n, n)
    integer :: i, j, k
    {open_directive}
    do k = 2, n - 1
        do j = 2, n - 1
            do i = 2, n - 1
                u_new(i, j, k) = (u(i - 1, j, k) + u(i + 1, j, k) + &
                                  u(i, j - 1, k) + u(i, j + 1, k) + &
                                  u(i, j, k - 1) + u(i, j, k + 1)) / 6.0d0
            end do
        end do
    end do
    {close_directive}
end subroutine jacobi
"""


def _cg(loop_open: str, loop_close: str, red_open: str, red_close: str) -> str:
    return f"""! Conjugate gradient solve of A x = b for a dense SPD n x n matrix
subroutine cg(n, A, b, x, max_iter, tol)
    implicit none
    integer, intent(in) :: n, max_iter
    real(8), intent(in) :: A(n, n)
    real(8), intent(in) :: b(n)
    real(8), intent(out) :: x(n)
    real(8), intent(in) :: tol
    real(8) :: r(n), p(n), Ap(n)
    real(8) :: rsold, rsnew, alpha, beta, pAp, sum
    integer :: i, j, iter
    do i = 1, n
        x(i) = 0.0d0
        r(i) = b(i)
        p(i) = r(i)
    end do
    rsold = 0.0d0
    {red_open.replace("REDVAR", "rsold")}
    do i = 1, n
        rsold = rsold + r(i) * r(i)
    end do
    {red_close}
    do iter = 1, max_iter
        {loop_open}
        do i = 1, n
            sum = 0.0d0
            do j = 1, n
                sum = sum + A(i, j) * p(j)
            end do
            Ap(i) = sum
        end do
        {loop_close}
        pAp = 0.0d0
        {red_open.replace("REDVAR", "pAp")}
        do i = 1, n
            pAp = pAp + p(i) * Ap(i)
        end do
        {red_close}
        alpha = rsold / pAp
        {loop_open}
        do i = 1, n
            x(i) = x(i) + alpha * p(i)
            r(i) = r(i) - alpha * Ap(i)
        end do
        {loop_close}
        rsnew = 0.0d0
        {red_open.replace("REDVAR", "rsnew")}
        do i = 1, n
            rsnew = rsnew + r(i) * r(i)
        end do
        {red_close}
        if (sqrt(rsnew) < tol) then
            exit
        end if
        beta = rsnew / rsold
        {loop_open}
        do i = 1, n
            p(i) = r(i) + beta * p(i)
        end do
        {loop_close}
        rsold = rsnew
    end do
end subroutine cg
"""


# -- OpenMP (CPU threads) -----------------------------------------------------

_OMP_DO = "!$omp parallel do"
_OMP_END_DO = "!$omp end parallel do"
_OMP_DO_PRIV = "!$omp parallel do private(j, sum)"
_OMP_DO_PRIV3 = "!$omp parallel do collapse(3)"
_OMP_RED = "!$omp parallel do reduction(+:REDVAR)"
_OMP_END = "!$omp end parallel do"

# -- OpenMP target offload ----------------------------------------------------

_OMP_TGT = "!$omp target teams distribute parallel do"
_OMP_TGT_END = "!$omp end target teams distribute parallel do"
_OMP_TGT_AXPY = "!$omp target teams distribute parallel do map(to: x) map(tofrom: y)"
_OMP_TGT_GEMV = "!$omp target teams distribute parallel do private(j, sum) map(to: A, x) map(from: y)"
_OMP_TGT_GEMM = "!$omp target teams distribute parallel do collapse(2) private(l, sum) map(to: A, B) map(from: C)"
_OMP_TGT_SPMV = "!$omp target teams distribute parallel do private(j, sum) map(to: row_ptr, col_idx, values, x) map(from: y)"
_OMP_TGT_JACOBI = "!$omp target teams distribute parallel do collapse(3) map(to: u) map(from: u_new)"
_OMP_TGT_RED = "!$omp target teams distribute parallel do reduction(+:REDVAR)"

# -- OpenACC --------------------------------------------------------------------

_ACC = "!$acc parallel loop"
_ACC_END = "!$acc end parallel loop"
_ACC_AXPY = "!$acc parallel loop copyin(x) copy(y)"
_ACC_GEMV = "!$acc parallel loop private(j, sum) copyin(A, x) copyout(y)"
_ACC_GEMM = "!$acc parallel loop collapse(2) private(l, sum) copyin(A, B) copyout(C)"
_ACC_SPMV = "!$acc parallel loop private(j, sum) copyin(row_ptr, col_idx, values, x) copyout(y)"
_ACC_JACOBI = "!$acc parallel loop collapse(3) copyin(u) copyout(u_new)"
_ACC_RED = "!$acc parallel loop reduction(+:REDVAR)"


TEMPLATES: dict[tuple[str, str], str] = {
    # -- OpenMP --------------------------------------------------------------
    ("openmp", "axpy"): _axpy(_OMP_DO, _OMP_END_DO),
    ("openmp", "gemv"): _gemv(_OMP_DO_PRIV, _OMP_END_DO),
    ("openmp", "gemm"): _gemm(_OMP_DO_PRIV, _OMP_END_DO),
    ("openmp", "spmv"): _spmv(_OMP_DO_PRIV, _OMP_END_DO),
    ("openmp", "jacobi"): _jacobi(_OMP_DO_PRIV3, _OMP_END_DO),
    ("openmp", "cg"): _cg(_OMP_DO, _OMP_END, _OMP_RED, _OMP_END),
    # -- OpenMP offload -------------------------------------------------------
    ("openmp_offload", "axpy"): _axpy(_OMP_TGT_AXPY, _OMP_TGT_END),
    ("openmp_offload", "gemv"): _gemv(_OMP_TGT_GEMV, _OMP_TGT_END),
    ("openmp_offload", "gemm"): _gemm(_OMP_TGT_GEMM, _OMP_TGT_END),
    ("openmp_offload", "spmv"): _spmv(_OMP_TGT_SPMV, _OMP_TGT_END),
    ("openmp_offload", "jacobi"): _jacobi(_OMP_TGT_JACOBI, _OMP_TGT_END),
    ("openmp_offload", "cg"): _cg(_OMP_TGT, _OMP_TGT_END, _OMP_TGT_RED, _OMP_TGT_END),
    # -- OpenACC ---------------------------------------------------------------
    ("openacc", "axpy"): _axpy(_ACC_AXPY, _ACC_END),
    ("openacc", "gemv"): _gemv(_ACC_GEMV, _ACC_END),
    ("openacc", "gemm"): _gemm(_ACC_GEMM, _ACC_END),
    ("openacc", "spmv"): _spmv(_ACC_SPMV, _ACC_END),
    ("openacc", "jacobi"): _jacobi(_ACC_JACOBI, _ACC_END),
    ("openacc", "cg"): _cg(_ACC, _ACC_END, _ACC_RED, _ACC_END),
}
