"""C++ templates for the portable abstraction layers: Kokkos, Thrust, SyCL.

These models wrap the loop nests in library constructs (``parallel_for``
with lambdas or functors, device vectors, queues and buffers), which is why
public example code for them is scarcer and structurally more varied than
plain directive code — one of the explanations the paper offers for their
lower scores.
"""

from __future__ import annotations

__all__ = ["TEMPLATES"]

# ---------------------------------------------------------------------------
# Kokkos
# ---------------------------------------------------------------------------

_KOKKOS_AXPY = """#include <Kokkos_Core.hpp>

// AXPY: y = a * x + y
void axpy(int n, double a, Kokkos::View<const double *> x, Kokkos::View<double *> y)
{
    Kokkos::parallel_for("axpy", n, KOKKOS_LAMBDA(const int i) {
        y(i) = a * x(i) + y(i);
    });
    Kokkos::fence();
}
"""

_KOKKOS_GEMV = """#include <Kokkos_Core.hpp>

// GEMV: y = A * x
void gemv(int m, int n, Kokkos::View<const double **> A,
          Kokkos::View<const double *> x, Kokkos::View<double *> y)
{
    Kokkos::parallel_for("gemv", m, KOKKOS_LAMBDA(const int i) {
        double sum = 0.0;
        for (int j = 0; j < n; j++) {
            sum += A(i, j) * x(j);
        }
        y(i) = sum;
    });
    Kokkos::fence();
}
"""

_KOKKOS_GEMM = """#include <Kokkos_Core.hpp>

// GEMM: C = A * B
void gemm(int m, int n, int k, Kokkos::View<const double **> A,
          Kokkos::View<const double **> B, Kokkos::View<double **> C)
{
    Kokkos::parallel_for(
        "gemm",
        Kokkos::MDRangePolicy<Kokkos::Rank<2>>({0, 0}, {m, n}),
        KOKKOS_LAMBDA(const int i, const int j) {
            double sum = 0.0;
            for (int l = 0; l < k; l++) {
                sum += A(i, l) * B(l, j);
            }
            C(i, j) = sum;
        });
    Kokkos::fence();
}
"""

_KOKKOS_SPMV = """#include <Kokkos_Core.hpp>

// SpMV: y = A * x for a CSR matrix with n rows
void spmv(int n, Kokkos::View<const int *> row_ptr, Kokkos::View<const int *> col_idx,
          Kokkos::View<const double *> values, Kokkos::View<const double *> x,
          Kokkos::View<double *> y)
{
    Kokkos::parallel_for("spmv", n, KOKKOS_LAMBDA(const int i) {
        double sum = 0.0;
        for (int j = row_ptr(i); j < row_ptr(i + 1); j++) {
            sum += values(j) * x(col_idx(j));
        }
        y(i) = sum;
    });
    Kokkos::fence();
}
"""

_KOKKOS_JACOBI = """#include <Kokkos_Core.hpp>

// 3D Jacobi stencil sweep on an n x n x n grid
void jacobi(int n, Kokkos::View<const double ***> u, Kokkos::View<double ***> u_new)
{
    Kokkos::parallel_for(
        "jacobi",
        Kokkos::MDRangePolicy<Kokkos::Rank<3>>({1, 1, 1}, {n - 1, n - 1, n - 1}),
        KOKKOS_LAMBDA(const int i, const int j, const int k) {
            u_new(i, j, k) = (u(i - 1, j, k) + u(i + 1, j, k) +
                              u(i, j - 1, k) + u(i, j + 1, k) +
                              u(i, j, k - 1) + u(i, j, k + 1)) / 6.0;
        });
    Kokkos::fence();
}
"""

_KOKKOS_CG = """#include <Kokkos_Core.hpp>
#include <cmath>

// Conjugate gradient solve of A x = b for a dense SPD n x n matrix
void cg(int n, Kokkos::View<const double **> A, Kokkos::View<const double *> b,
        Kokkos::View<double *> x, int max_iter, double tol)
{
    Kokkos::View<double *> r("r", n), p("p", n), Ap("Ap", n);
    Kokkos::parallel_for("init", n, KOKKOS_LAMBDA(const int i) {
        x(i) = 0.0;
        r(i) = b(i);
        p(i) = r(i);
    });
    double rsold = 0.0;
    Kokkos::parallel_reduce("dot_rr", n, KOKKOS_LAMBDA(const int i, double &acc) {
        acc += r(i) * r(i);
    }, rsold);
    for (int iter = 0; iter < max_iter; iter++) {
        Kokkos::parallel_for("matvec", n, KOKKOS_LAMBDA(const int i) {
            double sum = 0.0;
            for (int j = 0; j < n; j++) {
                sum += A(i, j) * p(j);
            }
            Ap(i) = sum;
        });
        double pAp = 0.0;
        Kokkos::parallel_reduce("dot_pAp", n, KOKKOS_LAMBDA(const int i, double &acc) {
            acc += p(i) * Ap(i);
        }, pAp);
        double alpha = rsold / pAp;
        Kokkos::parallel_for("update_xr", n, KOKKOS_LAMBDA(const int i) {
            x(i) += alpha * p(i);
            r(i) -= alpha * Ap(i);
        });
        double rsnew = 0.0;
        Kokkos::parallel_reduce("dot_rr_new", n, KOKKOS_LAMBDA(const int i, double &acc) {
            acc += r(i) * r(i);
        }, rsnew);
        if (std::sqrt(rsnew) < tol) {
            break;
        }
        double beta = rsnew / rsold;
        Kokkos::parallel_for("update_p", n, KOKKOS_LAMBDA(const int i) {
            p(i) = r(i) + beta * p(i);
        });
        rsold = rsnew;
    }
    Kokkos::fence();
}
"""

# ---------------------------------------------------------------------------
# Thrust
# ---------------------------------------------------------------------------

_THRUST_AXPY = """#include <thrust/device_vector.h>
#include <thrust/transform.h>
#include <thrust/functional.h>

// AXPY: y = a * x + y
struct axpy_functor
{
    const double a;
    axpy_functor(double a_) : a(a_) {}
    __host__ __device__ double operator()(const double &x, const double &y) const
    {
        return a * x + y;
    }
};

void axpy(int n, double a, const thrust::device_vector<double> &x,
          thrust::device_vector<double> &y)
{
    thrust::transform(x.begin(), x.end(), y.begin(), y.begin(), axpy_functor(a));
}
"""

_THRUST_GEMV = """#include <thrust/device_vector.h>
#include <thrust/for_each.h>
#include <thrust/iterator/counting_iterator.h>
#include <thrust/execution_policy.h>

// GEMV: y = A * x (row-major A), one thread per row via counting_iterator
struct gemv_functor
{
    int n;
    const double *A;
    const double *x;
    double *y;
    gemv_functor(int n_, const double *A_, const double *x_, double *y_)
        : n(n_), A(A_), x(x_), y(y_) {}
    __host__ __device__ void operator()(int i) const
    {
        double sum = 0.0;
        for (int j = 0; j < n; j++) {
            sum += A[i * n + j] * x[j];
        }
        y[i] = sum;
    }
};

void gemv(int m, int n, const thrust::device_vector<double> &A,
          const thrust::device_vector<double> &x, thrust::device_vector<double> &y)
{
    thrust::for_each(thrust::device,
                     thrust::counting_iterator<int>(0),
                     thrust::counting_iterator<int>(m),
                     gemv_functor(n, thrust::raw_pointer_cast(A.data()),
                                  thrust::raw_pointer_cast(x.data()),
                                  thrust::raw_pointer_cast(y.data())));
}
"""

_THRUST_GEMM = """#include <thrust/device_vector.h>
#include <thrust/for_each.h>
#include <thrust/iterator/counting_iterator.h>
#include <thrust/execution_policy.h>

// GEMM: C = A * B, one thread per output element via counting_iterator
struct gemm_functor
{
    int n;
    int k;
    const double *A;
    const double *B;
    double *C;
    gemm_functor(int n_, int k_, const double *A_, const double *B_, double *C_)
        : n(n_), k(k_), A(A_), B(B_), C(C_) {}
    __host__ __device__ void operator()(int idx) const
    {
        int i = idx / n;
        int j = idx % n;
        double sum = 0.0;
        for (int l = 0; l < k; l++) {
            sum += A[i * k + l] * B[l * n + j];
        }
        C[i * n + j] = sum;
    }
};

void gemm(int m, int n, int k, const thrust::device_vector<double> &A,
          const thrust::device_vector<double> &B, thrust::device_vector<double> &C)
{
    thrust::for_each(thrust::device,
                     thrust::counting_iterator<int>(0),
                     thrust::counting_iterator<int>(m * n),
                     gemm_functor(n, k, thrust::raw_pointer_cast(A.data()),
                                  thrust::raw_pointer_cast(B.data()),
                                  thrust::raw_pointer_cast(C.data())));
}
"""

_THRUST_SPMV = """#include <thrust/device_vector.h>
#include <thrust/for_each.h>
#include <thrust/iterator/counting_iterator.h>
#include <thrust/execution_policy.h>

// SpMV: y = A * x for a CSR matrix, one thread per row via counting_iterator
struct spmv_functor
{
    const int *row_ptr;
    const int *col_idx;
    const double *values;
    const double *x;
    double *y;
    spmv_functor(const int *rp, const int *ci, const double *v, const double *x_, double *y_)
        : row_ptr(rp), col_idx(ci), values(v), x(x_), y(y_) {}
    __host__ __device__ void operator()(int i) const
    {
        double sum = 0.0;
        for (int j = row_ptr[i]; j < row_ptr[i + 1]; j++) {
            sum += values[j] * x[col_idx[j]];
        }
        y[i] = sum;
    }
};

void spmv(int n, const thrust::device_vector<int> &row_ptr,
          const thrust::device_vector<int> &col_idx,
          const thrust::device_vector<double> &values,
          const thrust::device_vector<double> &x, thrust::device_vector<double> &y)
{
    thrust::for_each(thrust::device,
                     thrust::counting_iterator<int>(0),
                     thrust::counting_iterator<int>(n),
                     spmv_functor(thrust::raw_pointer_cast(row_ptr.data()),
                                  thrust::raw_pointer_cast(col_idx.data()),
                                  thrust::raw_pointer_cast(values.data()),
                                  thrust::raw_pointer_cast(x.data()),
                                  thrust::raw_pointer_cast(y.data())));
}
"""

_THRUST_JACOBI = """#include <thrust/device_vector.h>
#include <thrust/for_each.h>
#include <thrust/iterator/counting_iterator.h>
#include <thrust/execution_policy.h>

// 3D Jacobi stencil sweep, one thread per grid point via counting_iterator
struct jacobi_functor
{
    int n;
    const double *u;
    double *u_new;
    jacobi_functor(int n_, const double *u_, double *un_) : n(n_), u(u_), u_new(un_) {}
    __host__ __device__ void operator()(int idx) const
    {
        int i = idx / (n * n);
        int j = (idx / n) % n;
        int k = idx % n;
        if (i >= 1 && i < n - 1 && j >= 1 && j < n - 1 && k >= 1 && k < n - 1) {
            u_new[idx] = (u[(i - 1) * n * n + j * n + k] +
                          u[(i + 1) * n * n + j * n + k] +
                          u[i * n * n + (j - 1) * n + k] +
                          u[i * n * n + (j + 1) * n + k] +
                          u[i * n * n + j * n + (k - 1)] +
                          u[i * n * n + j * n + (k + 1)]) / 6.0;
        }
    }
};

void jacobi(int n, const thrust::device_vector<double> &u, thrust::device_vector<double> &u_new)
{
    thrust::for_each(thrust::device,
                     thrust::counting_iterator<int>(0),
                     thrust::counting_iterator<int>(n * n * n),
                     jacobi_functor(n, thrust::raw_pointer_cast(u.data()),
                                    thrust::raw_pointer_cast(u_new.data())));
}
"""

_THRUST_CG = """#include <thrust/device_vector.h>
#include <thrust/transform.h>
#include <thrust/for_each.h>
#include <thrust/inner_product.h>
#include <thrust/iterator/counting_iterator.h>
#include <thrust/execution_policy.h>
#include <cmath>

// Conjugate gradient solve of A x = b for a dense SPD n x n matrix
struct matvec_functor
{
    int n;
    const double *A;
    const double *p;
    double *Ap;
    matvec_functor(int n_, const double *A_, const double *p_, double *Ap_)
        : n(n_), A(A_), p(p_), Ap(Ap_) {}
    __host__ __device__ void operator()(int i) const
    {
        double sum = 0.0;
        for (int j = 0; j < n; j++) {
            sum += A[i * n + j] * p[j];
        }
        Ap[i] = sum;
    }
};

struct saxpy_functor
{
    double alpha;
    saxpy_functor(double a) : alpha(a) {}
    __host__ __device__ double operator()(const double &x, const double &y) const
    {
        return y + alpha * x;
    }
};

struct xpby_functor
{
    double beta;
    xpby_functor(double b) : beta(b) {}
    __host__ __device__ double operator()(const double &r, const double &p) const
    {
        return r + beta * p;
    }
};

void cg(int n, const thrust::device_vector<double> &A, const thrust::device_vector<double> &b,
        thrust::device_vector<double> &x, int max_iter, double tol)
{
    thrust::device_vector<double> r = b;
    thrust::device_vector<double> p = b;
    thrust::device_vector<double> Ap(n, 0.0);
    thrust::fill(x.begin(), x.end(), 0.0);
    double rsold = thrust::inner_product(r.begin(), r.end(), r.begin(), 0.0);
    for (int iter = 0; iter < max_iter; iter++) {
        thrust::for_each(thrust::device,
                         thrust::counting_iterator<int>(0),
                         thrust::counting_iterator<int>(n),
                         matvec_functor(n, thrust::raw_pointer_cast(A.data()),
                                        thrust::raw_pointer_cast(p.data()),
                                        thrust::raw_pointer_cast(Ap.data())));
        double pAp = thrust::inner_product(p.begin(), p.end(), Ap.begin(), 0.0);
        double alpha = rsold / pAp;
        thrust::transform(p.begin(), p.end(), x.begin(), x.begin(), saxpy_functor(alpha));
        thrust::transform(Ap.begin(), Ap.end(), r.begin(), r.begin(), saxpy_functor(-alpha));
        double rsnew = thrust::inner_product(r.begin(), r.end(), r.begin(), 0.0);
        if (std::sqrt(rsnew) < tol) {
            break;
        }
        double beta = rsnew / rsold;
        thrust::transform(r.begin(), r.end(), p.begin(), p.begin(), xpby_functor(beta));
        rsold = rsnew;
    }
}
"""

# ---------------------------------------------------------------------------
# SyCL
# ---------------------------------------------------------------------------

_SYCL_AXPY = """#include <CL/sycl.hpp>

// AXPY: y = a * x + y
void axpy(int n, double a, const double *x, double *y)
{
    sycl::queue q;
    {
        sycl::buffer<double, 1> x_buf(x, sycl::range<1>(n));
        sycl::buffer<double, 1> y_buf(y, sycl::range<1>(n));
        q.submit([&](sycl::handler &h) {
            auto x_acc = x_buf.get_access<sycl::access::mode::read>(h);
            auto y_acc = y_buf.get_access<sycl::access::mode::read_write>(h);
            h.parallel_for(sycl::range<1>(n), [=](sycl::id<1> i) {
                y_acc[i] = a * x_acc[i] + y_acc[i];
            });
        });
        q.wait();
    }
}
"""

_SYCL_GEMV = """#include <CL/sycl.hpp>

// GEMV: y = A * x, one work-item per row
void gemv(int m, int n, const double *A, const double *x, double *y)
{
    sycl::queue q;
    {
        sycl::buffer<double, 1> A_buf(A, sycl::range<1>(m * n));
        sycl::buffer<double, 1> x_buf(x, sycl::range<1>(n));
        sycl::buffer<double, 1> y_buf(y, sycl::range<1>(m));
        q.submit([&](sycl::handler &h) {
            auto A_acc = A_buf.get_access<sycl::access::mode::read>(h);
            auto x_acc = x_buf.get_access<sycl::access::mode::read>(h);
            auto y_acc = y_buf.get_access<sycl::access::mode::write>(h);
            h.parallel_for(sycl::range<1>(m), [=](sycl::id<1> i) {
                double sum = 0.0;
                for (int j = 0; j < n; j++) {
                    sum += A_acc[i * n + j] * x_acc[j];
                }
                y_acc[i] = sum;
            });
        });
        q.wait();
    }
}
"""

_SYCL_GEMM = """#include <CL/sycl.hpp>

// GEMM: C = A * B, one work-item per output element
void gemm(int m, int n, int k, const double *A, const double *B, double *C)
{
    sycl::queue q;
    {
        sycl::buffer<double, 1> A_buf(A, sycl::range<1>(m * k));
        sycl::buffer<double, 1> B_buf(B, sycl::range<1>(k * n));
        sycl::buffer<double, 1> C_buf(C, sycl::range<1>(m * n));
        q.submit([&](sycl::handler &h) {
            auto A_acc = A_buf.get_access<sycl::access::mode::read>(h);
            auto B_acc = B_buf.get_access<sycl::access::mode::read>(h);
            auto C_acc = C_buf.get_access<sycl::access::mode::write>(h);
            h.parallel_for(sycl::range<2>(m, n), [=](sycl::id<2> idx) {
                int i = idx[0];
                int j = idx[1];
                double sum = 0.0;
                for (int l = 0; l < k; l++) {
                    sum += A_acc[i * k + l] * B_acc[l * n + j];
                }
                C_acc[i * n + j] = sum;
            });
        });
        q.wait();
    }
}
"""

_SYCL_SPMV = """#include <CL/sycl.hpp>

// SpMV: y = A * x for a CSR matrix, one work-item per row
void spmv(int n, int nnz, const int *row_ptr, const int *col_idx,
          const double *values, const double *x, double *y)
{
    sycl::queue q;
    {
        sycl::buffer<int, 1> rp_buf(row_ptr, sycl::range<1>(n + 1));
        sycl::buffer<int, 1> ci_buf(col_idx, sycl::range<1>(nnz));
        sycl::buffer<double, 1> v_buf(values, sycl::range<1>(nnz));
        sycl::buffer<double, 1> x_buf(x, sycl::range<1>(n));
        sycl::buffer<double, 1> y_buf(y, sycl::range<1>(n));
        q.submit([&](sycl::handler &h) {
            auto rp = rp_buf.get_access<sycl::access::mode::read>(h);
            auto ci = ci_buf.get_access<sycl::access::mode::read>(h);
            auto v = v_buf.get_access<sycl::access::mode::read>(h);
            auto x_acc = x_buf.get_access<sycl::access::mode::read>(h);
            auto y_acc = y_buf.get_access<sycl::access::mode::write>(h);
            h.parallel_for(sycl::range<1>(n), [=](sycl::id<1> i) {
                double sum = 0.0;
                for (int j = rp[i]; j < rp[i + 1]; j++) {
                    sum += v[j] * x_acc[ci[j]];
                }
                y_acc[i] = sum;
            });
        });
        q.wait();
    }
}
"""

_SYCL_JACOBI = """#include <CL/sycl.hpp>

// 3D Jacobi stencil sweep, one work-item per interior grid point
void jacobi(int n, const double *u, double *u_new)
{
    sycl::queue q;
    {
        sycl::buffer<double, 1> u_buf(u, sycl::range<1>(n * n * n));
        sycl::buffer<double, 1> un_buf(u_new, sycl::range<1>(n * n * n));
        q.submit([&](sycl::handler &h) {
            auto u_acc = u_buf.get_access<sycl::access::mode::read>(h);
            auto un_acc = un_buf.get_access<sycl::access::mode::write>(h);
            h.parallel_for(sycl::range<3>(n - 2, n - 2, n - 2), [=](sycl::id<3> idx) {
                int i = idx[0] + 1;
                int j = idx[1] + 1;
                int k = idx[2] + 1;
                int c = i * n * n + j * n + k;
                un_acc[c] = (u_acc[(i - 1) * n * n + j * n + k] +
                             u_acc[(i + 1) * n * n + j * n + k] +
                             u_acc[i * n * n + (j - 1) * n + k] +
                             u_acc[i * n * n + (j + 1) * n + k] +
                             u_acc[i * n * n + j * n + (k - 1)] +
                             u_acc[i * n * n + j * n + (k + 1)]) / 6.0;
            });
        });
        q.wait();
    }
}
"""

_SYCL_CG = """#include <CL/sycl.hpp>
#include <cmath>
#include <vector>

// Conjugate gradient solve of A x = b for a dense SPD n x n matrix
static double dot(const std::vector<double> &a, const std::vector<double> &b)
{
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); i++) {
        sum += a[i] * b[i];
    }
    return sum;
}

void cg(int n, const double *A, const double *b, double *x, int max_iter, double tol)
{
    sycl::queue q;
    std::vector<double> r(b, b + n), p(b, b + n), Ap(n, 0.0);
    for (int i = 0; i < n; i++) {
        x[i] = 0.0;
    }
    double rsold = dot(r, r);
    sycl::buffer<double, 1> A_buf(A, sycl::range<1>(n * n));
    for (int iter = 0; iter < max_iter; iter++) {
        {
            sycl::buffer<double, 1> p_buf(p.data(), sycl::range<1>(n));
            sycl::buffer<double, 1> Ap_buf(Ap.data(), sycl::range<1>(n));
            q.submit([&](sycl::handler &h) {
                auto A_acc = A_buf.get_access<sycl::access::mode::read>(h);
                auto p_acc = p_buf.get_access<sycl::access::mode::read>(h);
                auto Ap_acc = Ap_buf.get_access<sycl::access::mode::write>(h);
                h.parallel_for(sycl::range<1>(n), [=](sycl::id<1> i) {
                    double sum = 0.0;
                    for (int j = 0; j < n; j++) {
                        sum += A_acc[i * n + j] * p_acc[j];
                    }
                    Ap_acc[i] = sum;
                });
            });
            q.wait();
        }
        double pAp = dot(p, Ap);
        double alpha = rsold / pAp;
        for (int i = 0; i < n; i++) {
            x[i] += alpha * p[i];
            r[i] -= alpha * Ap[i];
        }
        double rsnew = dot(r, r);
        if (std::sqrt(rsnew) < tol) {
            break;
        }
        double beta = rsnew / rsold;
        for (int i = 0; i < n; i++) {
            p[i] = r[i] + beta * p[i];
        }
        rsold = rsnew;
    }
}
"""


TEMPLATES: dict[tuple[str, str], str] = {
    ("kokkos", "axpy"): _KOKKOS_AXPY,
    ("kokkos", "gemv"): _KOKKOS_GEMV,
    ("kokkos", "gemm"): _KOKKOS_GEMM,
    ("kokkos", "spmv"): _KOKKOS_SPMV,
    ("kokkos", "jacobi"): _KOKKOS_JACOBI,
    ("kokkos", "cg"): _KOKKOS_CG,
    ("thrust", "axpy"): _THRUST_AXPY,
    ("thrust", "gemv"): _THRUST_GEMV,
    ("thrust", "gemm"): _THRUST_GEMM,
    ("thrust", "spmv"): _THRUST_SPMV,
    ("thrust", "jacobi"): _THRUST_JACOBI,
    ("thrust", "cg"): _THRUST_CG,
    ("sycl", "axpy"): _SYCL_AXPY,
    ("sycl", "gemv"): _SYCL_GEMV,
    ("sycl", "gemm"): _SYCL_GEMM,
    ("sycl", "spmv"): _SYCL_SPMV,
    ("sycl", "jacobi"): _SYCL_JACOBI,
    ("sycl", "cg"): _SYCL_CG,
}
