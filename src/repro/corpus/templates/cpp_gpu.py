"""C++ templates for the vendor GPU kernel languages: CUDA and HIP.

Each template is a complete translation unit containing the ``__global__``
kernel(s) plus the host wrapper that allocates device memory, copies data,
launches the kernel and copies the result back — the structure of essentially
every public CUDA/HIP example of these kernels.
"""

from __future__ import annotations

__all__ = ["TEMPLATES"]

# ---------------------------------------------------------------------------
# CUDA
# ---------------------------------------------------------------------------

_CUDA_AXPY = """#include <cuda_runtime.h>

// AXPY: y = a * x + y
__global__ void axpy_kernel(int n, double a, const double *x, double *y)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}

void axpy(int n, double a, const double *x, double *y)
{
    double *d_x, *d_y;
    cudaMalloc(&d_x, n * sizeof(double));
    cudaMalloc(&d_y, n * sizeof(double));
    cudaMemcpy(d_x, x, n * sizeof(double), cudaMemcpyHostToDevice);
    cudaMemcpy(d_y, y, n * sizeof(double), cudaMemcpyHostToDevice);
    int threads = 256;
    int blocks = (n + threads - 1) / threads;
    axpy_kernel<<<blocks, threads>>>(n, a, d_x, d_y);
    cudaMemcpy(y, d_y, n * sizeof(double), cudaMemcpyDeviceToHost);
    cudaFree(d_x);
    cudaFree(d_y);
}
"""

_CUDA_GEMV = """#include <cuda_runtime.h>

// GEMV: y = A * x, one thread per row
__global__ void gemv_kernel(int m, int n, const double *A, const double *x, double *y)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < m) {
        double sum = 0.0;
        for (int j = 0; j < n; j++) {
            sum += A[i * n + j] * x[j];
        }
        y[i] = sum;
    }
}

void gemv(int m, int n, const double *A, const double *x, double *y)
{
    double *d_A, *d_x, *d_y;
    cudaMalloc(&d_A, m * n * sizeof(double));
    cudaMalloc(&d_x, n * sizeof(double));
    cudaMalloc(&d_y, m * sizeof(double));
    cudaMemcpy(d_A, A, m * n * sizeof(double), cudaMemcpyHostToDevice);
    cudaMemcpy(d_x, x, n * sizeof(double), cudaMemcpyHostToDevice);
    int threads = 256;
    int blocks = (m + threads - 1) / threads;
    gemv_kernel<<<blocks, threads>>>(m, n, d_A, d_x, d_y);
    cudaMemcpy(y, d_y, m * sizeof(double), cudaMemcpyDeviceToHost);
    cudaFree(d_A);
    cudaFree(d_x);
    cudaFree(d_y);
}
"""

_CUDA_GEMM = """#include <cuda_runtime.h>

// GEMM: C = A * B, one thread per output element
__global__ void gemm_kernel(int m, int n, int k, const double *A, const double *B, double *C)
{
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < m && j < n) {
        double sum = 0.0;
        for (int l = 0; l < k; l++) {
            sum += A[i * k + l] * B[l * n + j];
        }
        C[i * n + j] = sum;
    }
}

void gemm(int m, int n, int k, const double *A, const double *B, double *C)
{
    double *d_A, *d_B, *d_C;
    cudaMalloc(&d_A, m * k * sizeof(double));
    cudaMalloc(&d_B, k * n * sizeof(double));
    cudaMalloc(&d_C, m * n * sizeof(double));
    cudaMemcpy(d_A, A, m * k * sizeof(double), cudaMemcpyHostToDevice);
    cudaMemcpy(d_B, B, k * n * sizeof(double), cudaMemcpyHostToDevice);
    dim3 threads(16, 16);
    dim3 blocks((n + threads.x - 1) / threads.x, (m + threads.y - 1) / threads.y);
    gemm_kernel<<<blocks, threads>>>(m, n, k, d_A, d_B, d_C);
    cudaMemcpy(C, d_C, m * n * sizeof(double), cudaMemcpyDeviceToHost);
    cudaFree(d_A);
    cudaFree(d_B);
    cudaFree(d_C);
}
"""

_CUDA_SPMV = """#include <cuda_runtime.h>

// SpMV: y = A * x for a CSR matrix, one thread per row
__global__ void spmv_kernel(int n, const int *row_ptr, const int *col_idx,
                            const double *values, const double *x, double *y)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        double sum = 0.0;
        for (int j = row_ptr[i]; j < row_ptr[i + 1]; j++) {
            sum += values[j] * x[col_idx[j]];
        }
        y[i] = sum;
    }
}

void spmv(int n, int nnz, const int *row_ptr, const int *col_idx,
          const double *values, const double *x, double *y)
{
    int *d_row_ptr, *d_col_idx;
    double *d_values, *d_x, *d_y;
    cudaMalloc(&d_row_ptr, (n + 1) * sizeof(int));
    cudaMalloc(&d_col_idx, nnz * sizeof(int));
    cudaMalloc(&d_values, nnz * sizeof(double));
    cudaMalloc(&d_x, n * sizeof(double));
    cudaMalloc(&d_y, n * sizeof(double));
    cudaMemcpy(d_row_ptr, row_ptr, (n + 1) * sizeof(int), cudaMemcpyHostToDevice);
    cudaMemcpy(d_col_idx, col_idx, nnz * sizeof(int), cudaMemcpyHostToDevice);
    cudaMemcpy(d_values, values, nnz * sizeof(double), cudaMemcpyHostToDevice);
    cudaMemcpy(d_x, x, n * sizeof(double), cudaMemcpyHostToDevice);
    int threads = 256;
    int blocks = (n + threads - 1) / threads;
    spmv_kernel<<<blocks, threads>>>(n, d_row_ptr, d_col_idx, d_values, d_x, d_y);
    cudaMemcpy(y, d_y, n * sizeof(double), cudaMemcpyDeviceToHost);
    cudaFree(d_row_ptr);
    cudaFree(d_col_idx);
    cudaFree(d_values);
    cudaFree(d_x);
    cudaFree(d_y);
}
"""

_CUDA_JACOBI = """#include <cuda_runtime.h>

// 3D Jacobi stencil sweep, one thread per interior grid point
__global__ void jacobi_kernel(int n, const double *u, double *u_new)
{
    int i = blockIdx.z * blockDim.z + threadIdx.z;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    int k = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= 1 && i < n - 1 && j >= 1 && j < n - 1 && k >= 1 && k < n - 1) {
        int idx = i * n * n + j * n + k;
        u_new[idx] = (u[(i - 1) * n * n + j * n + k] +
                      u[(i + 1) * n * n + j * n + k] +
                      u[i * n * n + (j - 1) * n + k] +
                      u[i * n * n + (j + 1) * n + k] +
                      u[i * n * n + j * n + (k - 1)] +
                      u[i * n * n + j * n + (k + 1)]) / 6.0;
    }
}

void jacobi(int n, const double *u, double *u_new)
{
    size_t bytes = (size_t)n * n * n * sizeof(double);
    double *d_u, *d_u_new;
    cudaMalloc(&d_u, bytes);
    cudaMalloc(&d_u_new, bytes);
    cudaMemcpy(d_u, u, bytes, cudaMemcpyHostToDevice);
    cudaMemcpy(d_u_new, u, bytes, cudaMemcpyHostToDevice);
    dim3 threads(8, 8, 8);
    dim3 blocks((n + threads.x - 1) / threads.x,
                (n + threads.y - 1) / threads.y,
                (n + threads.z - 1) / threads.z);
    jacobi_kernel<<<blocks, threads>>>(n, d_u, d_u_new);
    cudaMemcpy(u_new, d_u_new, bytes, cudaMemcpyDeviceToHost);
    cudaFree(d_u);
    cudaFree(d_u_new);
}
"""

_CUDA_CG = """#include <cuda_runtime.h>
#include <cmath>
#include <vector>

// Building blocks for the conjugate gradient solver
__global__ void matvec_kernel(int n, const double *A, const double *p, double *Ap)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        double sum = 0.0;
        for (int j = 0; j < n; j++) {
            sum += A[i * n + j] * p[j];
        }
        Ap[i] = sum;
    }
}

__global__ void axpy_kernel(int n, double alpha, const double *x, double *y)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        y[i] = y[i] + alpha * x[i];
    }
}

__global__ void xpby_kernel(int n, const double *r, double beta, double *p)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        p[i] = r[i] + beta * p[i];
    }
}

__global__ void dot_kernel(int n, const double *a, const double *b, double *result)
{
    __shared__ double cache[256];
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    double temp = 0.0;
    while (i < n) {
        temp += a[i] * b[i];
        i += blockDim.x * gridDim.x;
    }
    cache[threadIdx.x] = temp;
    __syncthreads();
    for (int stride = blockDim.x / 2; stride > 0; stride /= 2) {
        if (threadIdx.x < stride) {
            cache[threadIdx.x] += cache[threadIdx.x + stride];
        }
        __syncthreads();
    }
    if (threadIdx.x == 0) {
        atomicAdd(result, cache[0]);
    }
}

static double device_dot(int n, const double *d_a, const double *d_b, double *d_scratch)
{
    double zero = 0.0;
    cudaMemcpy(d_scratch, &zero, sizeof(double), cudaMemcpyHostToDevice);
    int threads = 256;
    int blocks = (n + threads - 1) / threads;
    dot_kernel<<<blocks, threads>>>(n, d_a, d_b, d_scratch);
    double result = 0.0;
    cudaMemcpy(&result, d_scratch, sizeof(double), cudaMemcpyDeviceToHost);
    return result;
}

// Conjugate gradient solve of A x = b for a dense SPD n x n matrix
void cg(int n, const double *A, const double *b, double *x, int max_iter, double tol)
{
    double *d_A, *d_x, *d_r, *d_p, *d_Ap, *d_scratch;
    cudaMalloc(&d_A, n * n * sizeof(double));
    cudaMalloc(&d_x, n * sizeof(double));
    cudaMalloc(&d_r, n * sizeof(double));
    cudaMalloc(&d_p, n * sizeof(double));
    cudaMalloc(&d_Ap, n * sizeof(double));
    cudaMalloc(&d_scratch, sizeof(double));
    cudaMemcpy(d_A, A, n * n * sizeof(double), cudaMemcpyHostToDevice);
    std::vector<double> zeros(n, 0.0);
    cudaMemcpy(d_x, zeros.data(), n * sizeof(double), cudaMemcpyHostToDevice);
    cudaMemcpy(d_r, b, n * sizeof(double), cudaMemcpyHostToDevice);
    cudaMemcpy(d_p, b, n * sizeof(double), cudaMemcpyHostToDevice);
    int threads = 256;
    int blocks = (n + threads - 1) / threads;
    double rsold = device_dot(n, d_r, d_r, d_scratch);
    for (int iter = 0; iter < max_iter; iter++) {
        matvec_kernel<<<blocks, threads>>>(n, d_A, d_p, d_Ap);
        double pAp = device_dot(n, d_p, d_Ap, d_scratch);
        double alpha = rsold / pAp;
        axpy_kernel<<<blocks, threads>>>(n, alpha, d_p, d_x);
        axpy_kernel<<<blocks, threads>>>(n, -alpha, d_Ap, d_r);
        double rsnew = device_dot(n, d_r, d_r, d_scratch);
        if (std::sqrt(rsnew) < tol) {
            break;
        }
        double beta = rsnew / rsold;
        xpby_kernel<<<blocks, threads>>>(n, d_r, beta, d_p);
        rsold = rsnew;
    }
    cudaMemcpy(x, d_x, n * sizeof(double), cudaMemcpyDeviceToHost);
    cudaFree(d_A);
    cudaFree(d_x);
    cudaFree(d_r);
    cudaFree(d_p);
    cudaFree(d_Ap);
    cudaFree(d_scratch);
}
"""

# ---------------------------------------------------------------------------
# HIP
# ---------------------------------------------------------------------------

_HIP_AXPY = """#include <hip/hip_runtime.h>

// AXPY: y = a * x + y
__global__ void axpy_kernel(int n, double a, const double *x, double *y)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}

void axpy(int n, double a, const double *x, double *y)
{
    double *d_x, *d_y;
    hipMalloc(&d_x, n * sizeof(double));
    hipMalloc(&d_y, n * sizeof(double));
    hipMemcpy(d_x, x, n * sizeof(double), hipMemcpyHostToDevice);
    hipMemcpy(d_y, y, n * sizeof(double), hipMemcpyHostToDevice);
    int threads = 256;
    int blocks = (n + threads - 1) / threads;
    hipLaunchKernelGGL(axpy_kernel, dim3(blocks), dim3(threads), 0, 0, n, a, d_x, d_y);
    hipMemcpy(y, d_y, n * sizeof(double), hipMemcpyDeviceToHost);
    hipFree(d_x);
    hipFree(d_y);
}
"""

_HIP_GEMV = """#include <hip/hip_runtime.h>

// GEMV: y = A * x, one thread per row
__global__ void gemv_kernel(int m, int n, const double *A, const double *x, double *y)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < m) {
        double sum = 0.0;
        for (int j = 0; j < n; j++) {
            sum += A[i * n + j] * x[j];
        }
        y[i] = sum;
    }
}

void gemv(int m, int n, const double *A, const double *x, double *y)
{
    double *d_A, *d_x, *d_y;
    hipMalloc(&d_A, m * n * sizeof(double));
    hipMalloc(&d_x, n * sizeof(double));
    hipMalloc(&d_y, m * sizeof(double));
    hipMemcpy(d_A, A, m * n * sizeof(double), hipMemcpyHostToDevice);
    hipMemcpy(d_x, x, n * sizeof(double), hipMemcpyHostToDevice);
    int threads = 256;
    int blocks = (m + threads - 1) / threads;
    hipLaunchKernelGGL(gemv_kernel, dim3(blocks), dim3(threads), 0, 0, m, n, d_A, d_x, d_y);
    hipMemcpy(y, d_y, m * sizeof(double), hipMemcpyDeviceToHost);
    hipFree(d_A);
    hipFree(d_x);
    hipFree(d_y);
}
"""

_HIP_GEMM = """#include <hip/hip_runtime.h>

// GEMM: C = A * B, one thread per output element
__global__ void gemm_kernel(int m, int n, int k, const double *A, const double *B, double *C)
{
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < m && j < n) {
        double sum = 0.0;
        for (int l = 0; l < k; l++) {
            sum += A[i * k + l] * B[l * n + j];
        }
        C[i * n + j] = sum;
    }
}

void gemm(int m, int n, int k, const double *A, const double *B, double *C)
{
    double *d_A, *d_B, *d_C;
    hipMalloc(&d_A, m * k * sizeof(double));
    hipMalloc(&d_B, k * n * sizeof(double));
    hipMalloc(&d_C, m * n * sizeof(double));
    hipMemcpy(d_A, A, m * k * sizeof(double), hipMemcpyHostToDevice);
    hipMemcpy(d_B, B, k * n * sizeof(double), hipMemcpyHostToDevice);
    dim3 threads(16, 16);
    dim3 blocks((n + threads.x - 1) / threads.x, (m + threads.y - 1) / threads.y);
    hipLaunchKernelGGL(gemm_kernel, blocks, threads, 0, 0, m, n, k, d_A, d_B, d_C);
    hipMemcpy(C, d_C, m * n * sizeof(double), hipMemcpyDeviceToHost);
    hipFree(d_A);
    hipFree(d_B);
    hipFree(d_C);
}
"""

_HIP_SPMV = """#include <hip/hip_runtime.h>

// SpMV: y = A * x for a CSR matrix, one thread per row
__global__ void spmv_kernel(int n, const int *row_ptr, const int *col_idx,
                            const double *values, const double *x, double *y)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        double sum = 0.0;
        for (int j = row_ptr[i]; j < row_ptr[i + 1]; j++) {
            sum += values[j] * x[col_idx[j]];
        }
        y[i] = sum;
    }
}

void spmv(int n, int nnz, const int *row_ptr, const int *col_idx,
          const double *values, const double *x, double *y)
{
    int *d_row_ptr, *d_col_idx;
    double *d_values, *d_x, *d_y;
    hipMalloc(&d_row_ptr, (n + 1) * sizeof(int));
    hipMalloc(&d_col_idx, nnz * sizeof(int));
    hipMalloc(&d_values, nnz * sizeof(double));
    hipMalloc(&d_x, n * sizeof(double));
    hipMalloc(&d_y, n * sizeof(double));
    hipMemcpy(d_row_ptr, row_ptr, (n + 1) * sizeof(int), hipMemcpyHostToDevice);
    hipMemcpy(d_col_idx, col_idx, nnz * sizeof(int), hipMemcpyHostToDevice);
    hipMemcpy(d_values, values, nnz * sizeof(double), hipMemcpyHostToDevice);
    hipMemcpy(d_x, x, n * sizeof(double), hipMemcpyHostToDevice);
    int threads = 256;
    int blocks = (n + threads - 1) / threads;
    hipLaunchKernelGGL(spmv_kernel, dim3(blocks), dim3(threads), 0, 0,
                       n, d_row_ptr, d_col_idx, d_values, d_x, d_y);
    hipMemcpy(y, d_y, n * sizeof(double), hipMemcpyDeviceToHost);
    hipFree(d_row_ptr);
    hipFree(d_col_idx);
    hipFree(d_values);
    hipFree(d_x);
    hipFree(d_y);
}
"""

_HIP_JACOBI = """#include <hip/hip_runtime.h>

// 3D Jacobi stencil sweep, one thread per interior grid point
__global__ void jacobi_kernel(int n, const double *u, double *u_new)
{
    int i = blockIdx.z * blockDim.z + threadIdx.z;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    int k = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= 1 && i < n - 1 && j >= 1 && j < n - 1 && k >= 1 && k < n - 1) {
        int idx = i * n * n + j * n + k;
        u_new[idx] = (u[(i - 1) * n * n + j * n + k] +
                      u[(i + 1) * n * n + j * n + k] +
                      u[i * n * n + (j - 1) * n + k] +
                      u[i * n * n + (j + 1) * n + k] +
                      u[i * n * n + j * n + (k - 1)] +
                      u[i * n * n + j * n + (k + 1)]) / 6.0;
    }
}

void jacobi(int n, const double *u, double *u_new)
{
    size_t bytes = (size_t)n * n * n * sizeof(double);
    double *d_u, *d_u_new;
    hipMalloc(&d_u, bytes);
    hipMalloc(&d_u_new, bytes);
    hipMemcpy(d_u, u, bytes, hipMemcpyHostToDevice);
    hipMemcpy(d_u_new, u, bytes, hipMemcpyHostToDevice);
    dim3 threads(8, 8, 8);
    dim3 blocks((n + threads.x - 1) / threads.x,
                (n + threads.y - 1) / threads.y,
                (n + threads.z - 1) / threads.z);
    hipLaunchKernelGGL(jacobi_kernel, blocks, threads, 0, 0, n, d_u, d_u_new);
    hipMemcpy(u_new, d_u_new, bytes, hipMemcpyDeviceToHost);
    hipFree(d_u);
    hipFree(d_u_new);
}
"""

_HIP_CG = """#include <hip/hip_runtime.h>
#include <cmath>
#include <vector>

__global__ void matvec_kernel(int n, const double *A, const double *p, double *Ap)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        double sum = 0.0;
        for (int j = 0; j < n; j++) {
            sum += A[i * n + j] * p[j];
        }
        Ap[i] = sum;
    }
}

__global__ void axpy_kernel(int n, double alpha, const double *x, double *y)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        y[i] = y[i] + alpha * x[i];
    }
}

__global__ void xpby_kernel(int n, const double *r, double beta, double *p)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        p[i] = r[i] + beta * p[i];
    }
}

__global__ void dot_kernel(int n, const double *a, const double *b, double *result)
{
    __shared__ double cache[256];
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    double temp = 0.0;
    while (i < n) {
        temp += a[i] * b[i];
        i += blockDim.x * gridDim.x;
    }
    cache[threadIdx.x] = temp;
    __syncthreads();
    for (int stride = blockDim.x / 2; stride > 0; stride /= 2) {
        if (threadIdx.x < stride) {
            cache[threadIdx.x] += cache[threadIdx.x + stride];
        }
        __syncthreads();
    }
    if (threadIdx.x == 0) {
        atomicAdd(result, cache[0]);
    }
}

static double device_dot(int n, const double *d_a, const double *d_b, double *d_scratch)
{
    double zero = 0.0;
    hipMemcpy(d_scratch, &zero, sizeof(double), hipMemcpyHostToDevice);
    int threads = 256;
    int blocks = (n + threads - 1) / threads;
    hipLaunchKernelGGL(dot_kernel, dim3(blocks), dim3(threads), 0, 0, n, d_a, d_b, d_scratch);
    double result = 0.0;
    hipMemcpy(&result, d_scratch, sizeof(double), hipMemcpyDeviceToHost);
    return result;
}

// Conjugate gradient solve of A x = b for a dense SPD n x n matrix
void cg(int n, const double *A, const double *b, double *x, int max_iter, double tol)
{
    double *d_A, *d_x, *d_r, *d_p, *d_Ap, *d_scratch;
    hipMalloc(&d_A, n * n * sizeof(double));
    hipMalloc(&d_x, n * sizeof(double));
    hipMalloc(&d_r, n * sizeof(double));
    hipMalloc(&d_p, n * sizeof(double));
    hipMalloc(&d_Ap, n * sizeof(double));
    hipMalloc(&d_scratch, sizeof(double));
    hipMemcpy(d_A, A, n * n * sizeof(double), hipMemcpyHostToDevice);
    std::vector<double> zeros(n, 0.0);
    hipMemcpy(d_x, zeros.data(), n * sizeof(double), hipMemcpyHostToDevice);
    hipMemcpy(d_r, b, n * sizeof(double), hipMemcpyHostToDevice);
    hipMemcpy(d_p, b, n * sizeof(double), hipMemcpyHostToDevice);
    int threads = 256;
    int blocks = (n + threads - 1) / threads;
    double rsold = device_dot(n, d_r, d_r, d_scratch);
    for (int iter = 0; iter < max_iter; iter++) {
        hipLaunchKernelGGL(matvec_kernel, dim3(blocks), dim3(threads), 0, 0, n, d_A, d_p, d_Ap);
        double pAp = device_dot(n, d_p, d_Ap, d_scratch);
        double alpha = rsold / pAp;
        hipLaunchKernelGGL(axpy_kernel, dim3(blocks), dim3(threads), 0, 0, n, alpha, d_p, d_x);
        hipLaunchKernelGGL(axpy_kernel, dim3(blocks), dim3(threads), 0, 0, n, -alpha, d_Ap, d_r);
        double rsnew = device_dot(n, d_r, d_r, d_scratch);
        if (std::sqrt(rsnew) < tol) {
            break;
        }
        double beta = rsnew / rsold;
        hipLaunchKernelGGL(xpby_kernel, dim3(blocks), dim3(threads), 0, 0, n, d_r, beta, d_p);
        rsold = rsnew;
    }
    hipMemcpy(x, d_x, n * sizeof(double), hipMemcpyDeviceToHost);
    hipFree(d_A);
    hipFree(d_x);
    hipFree(d_r);
    hipFree(d_p);
    hipFree(d_Ap);
    hipFree(d_scratch);
}
"""


TEMPLATES: dict[tuple[str, str], str] = {
    ("cuda", "axpy"): _CUDA_AXPY,
    ("cuda", "gemv"): _CUDA_GEMV,
    ("cuda", "gemm"): _CUDA_GEMM,
    ("cuda", "spmv"): _CUDA_SPMV,
    ("cuda", "jacobi"): _CUDA_JACOBI,
    ("cuda", "cg"): _CUDA_CG,
    ("hip", "axpy"): _HIP_AXPY,
    ("hip", "gemv"): _HIP_GEMV,
    ("hip", "gemm"): _HIP_GEMM,
    ("hip", "spmv"): _HIP_SPMV,
    ("hip", "jacobi"): _HIP_JACOBI,
    ("hip", "cg"): _HIP_CG,
}
