"""The synthetic "public code" corpus.

GitHub Copilot draws its suggestions from a model trained on public
repositories.  Offline we replace that training corpus with an explicit,
inspectable one:

* :mod:`repro.corpus.templates` — hand-written *correct* implementations of
  every (kernel, language, programming model) combination in Table 1.  These
  are the idiomatic solutions an expert in each community would write.
* :mod:`repro.corpus.mutations` — corruption operators that turn a correct
  template into the realistic failure modes the paper reports: wrong or
  missing directives, other programming models, undefined helper functions,
  off-by-one loop bounds, serial fallbacks, truncated code and comment-only
  answers.
* :mod:`repro.corpus.store` — the searchable corpus the simulated engine
  retrieves from, with per-entry metadata and popularity weighting.
"""

from __future__ import annotations

from repro.corpus.snippets import CodeSnippet, SnippetOrigin
from repro.corpus.store import (
    CorpusStore,
    build_default_corpus,
    clear_default_corpus_cache,
    default_corpus,
)
from repro.corpus.templates import get_template, has_template, iter_templates
from repro.corpus.mutations import (
    MUTATION_OPERATORS,
    MutationOperator,
    apply_mutation,
    available_mutations,
)

__all__ = [
    "CodeSnippet",
    "SnippetOrigin",
    "CorpusStore",
    "build_default_corpus",
    "default_corpus",
    "clear_default_corpus_cache",
    "get_template",
    "has_template",
    "iter_templates",
    "MutationOperator",
    "MUTATION_OPERATORS",
    "apply_mutation",
    "available_mutations",
]
