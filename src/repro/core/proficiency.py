"""The paper's five-level proficiency metric (Section 3.2).

Given the verdicts for the (up to ten) suggestions of one prompt, the rubric
assigns:

* ``0.00`` *non-knowledge* — no code at all, or not a single correct code;
* ``0.25`` *novice* — one correct code, but the list also contains other
  (correct or incorrect) programming models;
* ``0.50`` *learner* — one correct code and other incorrect codes, all using
  the requested programming model;
* ``0.75`` *proficient* — all codes correct and in the requested model;
* ``1.00`` *expert* — exactly one piece of code is provided and it is
  totally correct.

A "correct code" is a suggestion that is numerically/structurally correct
**and** uses the requested programming model (see
:class:`~repro.analysis.verdict.SuggestionVerdict`).
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence

from repro.analysis.verdict import SuggestionVerdict

__all__ = ["ProficiencyLevel", "classify_verdicts", "score_label"]


class ProficiencyLevel(float, enum.Enum):
    """The five proficiency levels and their numeric scores."""

    NON_KNOWLEDGE = 0.0
    NOVICE = 0.25
    LEARNER = 0.5
    PROFICIENT = 0.75
    EXPERT = 1.0

    @property
    def label(self) -> str:
        return self.name.lower().replace("_", "-")

    @classmethod
    def from_score(cls, score: float) -> "ProficiencyLevel":
        for level in cls:
            if abs(float(level.value) - score) < 1e-9:
                return level
        raise ValueError(f"{score!r} is not one of the five rubric scores")


def classify_verdicts(verdicts: Sequence[SuggestionVerdict]) -> ProficiencyLevel:
    """Apply the rubric to the verdicts of one prompt's suggestion list."""
    if not verdicts:
        return ProficiencyLevel.NON_KNOWLEDGE
    correct = [v for v in verdicts if v.is_correct]
    if not correct:
        return ProficiencyLevel.NON_KNOWLEDGE
    if len(verdicts) == 1:
        # Exactly one suggestion was offered and it is correct.
        return ProficiencyLevel.EXPERT
    if all(v.is_correct for v in verdicts):
        return ProficiencyLevel.PROFICIENT
    if any(v.uses_other_model for v in verdicts):
        return ProficiencyLevel.NOVICE
    return ProficiencyLevel.LEARNER


def score_label(score: float) -> str:
    """Human-readable label for a numeric rubric score."""
    return ProficiencyLevel.from_score(score).label


def mean_score(scores: Iterable[float]) -> float:
    """Plain average of rubric scores (used by the aggregation helpers)."""
    values = list(scores)
    if not values:
        return 0.0
    return sum(values) / len(values)
