"""Shape comparison between the reproduction and the published tables.

The reproduction does not try to match the paper's numbers exactly — the
generator is a simulator, the scorer is mechanical, and the paper's values
are single human-judged observations of a stochastic service.  What must
hold is the *shape*: which programming models win in each language, that
scores fall as kernels get more complex, where the prompt keyword helps, and
that the overall level sits around the novice/learner band.  This module
quantifies that agreement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.aggregate import kernel_averages, model_averages, postfix_effect
from repro.core.paper_reference import paper_cells, paper_table
from repro.core.runner import ResultSet
from repro.kernels.registry import KERNEL_NAMES
from repro.models.keywords import has_postfix_variant
from repro.models.programming_models import models_for_language

__all__ = ["spearman_rank_correlation", "ShapeComparison", "compare_to_paper"]


def _rank(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean rank), 1-based."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(1, len(values) + 1, dtype=np.float64)
    # Average the ranks of tied values.
    unique = {}
    for idx, value in enumerate(values):
        unique.setdefault(float(value), []).append(idx)
    for indices in unique.values():
        if len(indices) > 1:
            mean_rank = float(np.mean([ranks[i] for i in indices]))
            for i in indices:
                ranks[i] = mean_rank
    return ranks


def spearman_rank_correlation(a: list[float], b: list[float]) -> float:
    """Spearman's rho between two equally long score lists.

    Returns 0.0 when either list is constant (correlation undefined).
    """
    if len(a) != len(b):
        raise ValueError("lists must have the same length")
    if len(a) < 2:
        return 0.0
    xa = np.asarray(a, dtype=np.float64)
    xb = np.asarray(b, dtype=np.float64)
    if np.all(xa == xa[0]) or np.all(xb == xb[0]):
        return 0.0
    ra = _rank(xa)
    rb = _rank(xb)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = float(np.sqrt((ra ** 2).sum() * (rb ** 2).sum()))
    if denom == 0.0:
        return 0.0
    return float((ra * rb).sum() / denom)


@dataclass
class ShapeComparison:
    """Agreement summary for one language (one paper table)."""

    language: str
    #: Spearman rho over all cells of the table (both prompt variants).
    cell_rank_correlation: float
    #: Fraction of cells within 0.25 (one rubric level) of the paper value.
    within_one_level: float
    #: Mean absolute difference over all cells.
    mean_absolute_difference: float
    #: Whether the per-kernel ordering agrees that AXPY >= CG (complexity trend).
    complexity_trend_holds: bool
    #: Whether the keyword variant improves the language mean when the paper
    #: says it should (always True for Julia, which has no keyword variant).
    keyword_effect_agrees: bool
    #: The reproduction's best-scoring programming model for this language.
    top_model: str
    #: The paper's best-scoring programming model for this language.
    paper_top_model: str
    #: Per-cell pairs (model, kernel, variant, paper, reproduced).
    cells: list[tuple[str, str, bool, float, float]] = field(default_factory=list)

    @property
    def top_model_agrees(self) -> bool:
        return self.top_model == self.paper_top_model


def _paper_model_means(language: str) -> dict[str, float]:
    """Paper's per-model averages over kernels and available variants."""
    sums: dict[str, list[float]] = {}
    variants = (False, True) if has_postfix_variant(language) else (False,)
    for use_postfix in variants:
        for model_uid, kernel, score in paper_cells(language, use_postfix=use_postfix):
            sums.setdefault(model_uid, []).append(score)
    return {uid: sum(vals) / len(vals) for uid, vals in sums.items()}


def _paper_kernel_means(language: str) -> dict[str, float]:
    sums: dict[str, list[float]] = {k: [] for k in KERNEL_NAMES}
    variants = (False, True) if has_postfix_variant(language) else (False,)
    for use_postfix in variants:
        for _model, kernel, score in paper_cells(language, use_postfix=use_postfix):
            sums[kernel].append(score)
    return {k: sum(v) / len(v) for k, v in sums.items()}


def compare_to_paper(results: ResultSet, language: str) -> ShapeComparison:
    """Compare a language's reproduced table against the published one."""
    language = language.lower()
    variants = (False, True) if has_postfix_variant(language) else (False,)
    paper_values: list[float] = []
    repro_values: list[float] = []
    cells: list[tuple[str, str, bool, float, float]] = []
    for use_postfix in variants:
        table = paper_table(language, use_postfix=use_postfix)
        for model_uid, row in table.items():
            for kernel, paper_value in row.items():
                repro_value = results.score(model_uid, kernel, use_postfix=use_postfix)
                paper_values.append(paper_value)
                repro_values.append(repro_value)
                cells.append((model_uid, kernel, use_postfix, paper_value, repro_value))

    diffs = [abs(p - r) for p, r in zip(paper_values, repro_values)]
    within = sum(1 for d in diffs if d <= 0.25 + 1e-9) / len(diffs)

    repro_kernels = kernel_averages(results, language=language)
    complexity_trend = repro_kernels["axpy"] >= repro_kernels["cg"]

    if has_postfix_variant(language):
        effect = postfix_effect(results, language)
        keyword_agrees = effect["delta"] >= 0.0 if language != "cpp" else True
        # For C++ the paper reports a mild net improvement; accept either a
        # positive delta or a small negative one caused by the CUDA keyword
        # mismatch, which the paper also observed.
        if language == "cpp":
            keyword_agrees = effect["delta"] >= -0.1
    else:
        keyword_agrees = True

    repro_models = model_averages(results, language)
    paper_models = _paper_model_means(language)
    top_model = max(repro_models, key=repro_models.get)
    paper_top = max(paper_models, key=paper_models.get)

    return ShapeComparison(
        language=language,
        cell_rank_correlation=spearman_rank_correlation(paper_values, repro_values),
        within_one_level=within,
        mean_absolute_difference=sum(diffs) / len(diffs),
        complexity_trend_holds=complexity_trend,
        keyword_effect_agrees=keyword_agrees,
        top_model=top_model,
        paper_top_model=paper_top,
        cells=cells,
    )


def paper_reference_averages(language: str) -> tuple[dict[str, float], dict[str, float]]:
    """The paper's per-kernel and per-model averages (for report rendering)."""
    return _paper_kernel_means(language), _paper_model_means(language)


def models_in_table_order(language: str) -> list[str]:
    """Model uids in the order the paper's tables list them."""
    return [m.uid for m in models_for_language(language)]
