"""Core evaluation methodology: the paper's proficiency metric and harness.

* :mod:`repro.core.proficiency` — the five-level rubric of Section 3.2.
* :mod:`repro.core.evaluator` — turns a prompt's raw suggestions into
  verdicts and a proficiency score.
* :mod:`repro.core.runner` — runs the full Table 1 grid.
* :mod:`repro.core.aggregate` — per-kernel / per-model / per-language means
  (the data behind Figures 2-6).
* :mod:`repro.core.paper_reference` — the published Tables 2-5, used only for
  comparison and reporting.
* :mod:`repro.core.compare` — agreement statistics between the reproduction
  and the published numbers (rank correlation, qualitative findings).
* :mod:`repro.core.report` — text rendering of tables and ASCII figures.
"""

from __future__ import annotations

from repro.core.proficiency import ProficiencyLevel, classify_verdicts, score_label
from repro.core.evaluator import CellResult, PromptEvaluator
from repro.core.runner import EvaluationRunner, ResultSet
from repro.core.aggregate import (
    kernel_averages,
    language_averages,
    model_averages,
    overall_average,
)
from repro.core.paper_reference import paper_score, paper_table, PAPER_TABLES
from repro.core.compare import ShapeComparison, compare_to_paper, spearman_rank_correlation

__all__ = [
    "ProficiencyLevel",
    "classify_verdicts",
    "score_label",
    "CellResult",
    "PromptEvaluator",
    "EvaluationRunner",
    "ResultSet",
    "kernel_averages",
    "model_averages",
    "language_averages",
    "overall_average",
    "paper_score",
    "paper_table",
    "PAPER_TABLES",
    "ShapeComparison",
    "compare_to_paper",
    "spearman_rank_correlation",
]
