"""Per-prompt evaluation: suggestions → verdicts → proficiency score."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.analyzer import SuggestionAnalyzer
from repro.analysis.verdict import SuggestionVerdict
from repro.codex.engine import CompletionResult, SimulatedCodex
from repro.codex.prompt import Prompt
from repro.core.proficiency import ProficiencyLevel, classify_verdicts
from repro.models.grid import ExperimentCell

__all__ = ["CellResult", "PromptEvaluator"]


@dataclass
class CellResult:
    """Everything recorded for one evaluated prompt (one table cell)."""

    cell: ExperimentCell
    prompt: Prompt
    score: float
    level: ProficiencyLevel
    verdicts: list[SuggestionVerdict] = field(default_factory=list)
    suggestions: tuple[str, ...] = ()
    competence: float = 0.0

    @property
    def n_suggestions(self) -> int:
        return len(self.suggestions)

    @property
    def n_correct(self) -> int:
        return sum(1 for v in self.verdicts if v.is_correct)

    @property
    def n_hazards(self) -> int:
        """Suggestions with at least one static ``HAZARD`` finding."""
        return sum(
            1
            for v in self.verdicts
            if any(f.get("verdict") == "HAZARD" for f in v.static_findings)
        )

    def to_record(self) -> dict:
        """Flat dictionary for CSV/JSON persistence."""
        return {
            "language": self.cell.language,
            "model": self.cell.model,
            "kernel": self.cell.kernel,
            "postfix": self.cell.postfix,
            "use_postfix": self.cell.use_postfix,
            "score": self.score,
            "level": self.level.label,
            "n_suggestions": self.n_suggestions,
            "n_correct": self.n_correct,
            "n_hazards": self.n_hazards,
            "competence": round(self.competence, 4),
        }


@dataclass
class PromptEvaluator:
    """Evaluates prompts end-to-end: engine → analyzer → rubric."""

    engine: SimulatedCodex = field(default_factory=SimulatedCodex)
    analyzer: SuggestionAnalyzer = field(default_factory=SuggestionAnalyzer)

    def evaluate_cell(self, cell: ExperimentCell) -> CellResult:
        """Evaluate one experiment-grid cell."""
        prompt = Prompt.from_cell(cell)
        completion = self.engine.complete(prompt)
        return self.evaluate_completion(cell, prompt, completion)

    def evaluate_completion(
        self, cell: ExperimentCell, prompt: Prompt, completion: CompletionResult
    ) -> CellResult:
        """Score an already-obtained completion (used by ablations).

        The whole suggestion list goes through
        :meth:`~repro.analysis.analyzer.SuggestionAnalyzer.analyze_batch`, so
        cache-missing Python suggestions execute as one sandbox batch.
        """
        verdicts = self.analyzer.analyze_batch(
            completion.suggestions,
            language=prompt.language.name,
            kernel=prompt.kernel,
            requested_model=prompt.model_uid,
        )
        level = classify_verdicts(verdicts)
        return CellResult(
            cell=cell,
            prompt=prompt,
            score=float(level.value),
            level=level,
            verdicts=verdicts,
            suggestions=completion.suggestions,
            competence=completion.competence,
        )

    def evaluate_suggestions(
        self, cell: ExperimentCell, suggestions: tuple[str, ...]
    ) -> CellResult:
        """Score an explicit suggestion list (used to re-score external data)."""
        prompt = Prompt.from_cell(cell)
        completion = CompletionResult(prompt=prompt, suggestions=suggestions, competence=0.0)
        return self.evaluate_completion(cell, prompt, completion)
