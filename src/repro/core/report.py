"""Plain-text rendering helpers for tables and ASCII bar "figures".

The benchmark harness and the CLI use these to print the reproduced
Tables 2-5 and the per-kernel / per-model / per-language averages behind
Figures 2-6 in a terminal-friendly form, optionally side by side with the
published values.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_bar_chart", "format_score", "side_by_side"]


def format_score(value: float) -> str:
    """Render a rubric score compactly (0, 0.25, 0.5, 0.75, 1)."""
    if abs(value - round(value)) < 1e-9:
        return f"{value:.0f}"
    return f"{value:.2f}".rstrip("0")


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render a list of rows as an aligned text table."""
    materialised = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_bar_chart(
    values: Mapping[str, float],
    *,
    title: str | None = None,
    max_value: float = 1.0,
    width: int = 40,
) -> str:
    """Render a horizontal ASCII bar chart (the textual stand-in for a figure)."""
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    if not values:
        return "\n".join(lines + ["(no data)"])
    label_width = max(len(str(k)) for k in values)
    for label, value in values.items():
        clipped = max(0.0, min(max_value, float(value)))
        bar = "#" * int(round(width * clipped / max_value)) if max_value > 0 else ""
        lines.append(f"{str(label).ljust(label_width)}  {format_score(value):>5}  {bar}")
    return "\n".join(lines)


def side_by_side(left: str, right: str, *, gap: int = 4) -> str:
    """Place two text blocks next to each other (used for paper-vs-repro views)."""
    left_lines = left.splitlines()
    right_lines = right.splitlines()
    height = max(len(left_lines), len(right_lines))
    left_lines += [""] * (height - len(left_lines))
    right_lines += [""] * (height - len(right_lines))
    left_width = max((len(line) for line in left_lines), default=0)
    return "\n".join(
        f"{l.ljust(left_width)}{' ' * gap}{r}" for l, r in zip(left_lines, right_lines)
    )
