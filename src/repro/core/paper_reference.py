"""The published result tables (Tables 2-5 of the paper).

These numbers are used **only** for comparison and reporting — never as an
input to the simulated suggestion engine (DESIGN.md §6).  Kernel order in
every row is the canonical one: AXPY, GEMV, GEMM, SpMV, Jacobi, CG.
"""

from __future__ import annotations

from repro.kernels.registry import KERNEL_NAMES

__all__ = ["PAPER_TABLES", "paper_table", "paper_score", "paper_cells"]

_K = KERNEL_NAMES  # ("axpy", "gemv", "gemm", "spmv", "jacobi", "cg")


def _rows(raw: dict[str, tuple[float, ...]]) -> dict[str, dict[str, float]]:
    return {model: dict(zip(_K, scores)) for model, scores in raw.items()}


#: Table 2 — C++ (top half: bare prompt, bottom half: with ``function``).
_TABLE2_BARE = _rows(
    {
        "cpp.openmp": (0.75, 0.50, 0.50, 0.50, 0.00, 0.25),
        "cpp.openmp_offload": (0.50, 0.50, 0.50, 0.25, 0.25, 0.00),
        "cpp.openacc": (0.50, 0.00, 0.25, 0.00, 0.00, 0.00),
        "cpp.kokkos": (0.50, 0.00, 0.00, 0.00, 0.25, 0.00),
        "cpp.cuda": (0.75, 0.75, 0.75, 0.00, 0.00, 0.25),
        "cpp.hip": (0.75, 0.00, 0.00, 0.00, 0.25, 0.00),
        "cpp.thrust": (0.25, 0.00, 0.00, 0.00, 0.00, 0.00),
        "cpp.sycl": (0.75, 0.25, 0.00, 0.00, 0.00, 0.00),
    }
)
_TABLE2_KEYWORD = _rows(
    {
        "cpp.openmp": (0.75, 0.75, 0.75, 0.25, 0.25, 0.25),
        "cpp.openmp_offload": (0.50, 0.50, 0.50, 0.25, 0.25, 0.00),
        "cpp.openacc": (0.50, 0.50, 0.50, 0.25, 0.00, 0.00),
        "cpp.kokkos": (0.75, 0.25, 0.25, 0.00, 0.25, 0.00),
        "cpp.cuda": (0.75, 0.25, 0.00, 0.00, 0.00, 0.00),
        "cpp.hip": (0.75, 0.00, 0.00, 0.00, 0.25, 0.00),
        "cpp.thrust": (0.50, 0.00, 0.25, 0.00, 0.00, 0.00),
        "cpp.sycl": (0.75, 0.50, 0.25, 0.00, 0.00, 0.00),
    }
)

#: Table 3 — Fortran.
_TABLE3_BARE = _rows(
    {
        "fortran.openmp": (0.75, 0.00, 0.00, 0.00, 0.00, 0.00),
        "fortran.openmp_offload": (0.00, 0.00, 0.00, 0.00, 0.00, 0.00),
        "fortran.openacc": (0.00, 0.00, 0.00, 0.00, 0.00, 0.00),
    }
)
_TABLE3_KEYWORD = _rows(
    {
        "fortran.openmp": (0.75, 0.25, 0.25, 0.50, 0.50, 0.25),
        "fortran.openmp_offload": (0.25, 0.25, 0.25, 0.25, 0.50, 0.25),
        "fortran.openacc": (0.25, 0.25, 0.25, 0.25, 0.25, 0.25),
    }
)

#: Table 4 — Python.
_TABLE4_BARE = _rows(
    {
        "python.numpy": (0.25, 0.00, 0.00, 0.00, 0.00, 0.00),
        "python.cupy": (0.00, 0.00, 0.25, 0.00, 0.00, 0.00),
        "python.pycuda": (0.00, 0.00, 0.00, 0.00, 0.00, 0.00),
        "python.numba": (0.00, 0.00, 0.00, 0.00, 0.00, 0.00),
    }
)
_TABLE4_KEYWORD = _rows(
    {
        "python.numpy": (0.75, 0.25, 0.25, 0.50, 0.50, 0.75),
        "python.cupy": (0.50, 0.25, 0.25, 0.25, 0.25, 0.25),
        "python.pycuda": (0.50, 0.25, 0.50, 0.50, 0.25, 0.00),
        "python.numba": (0.25, 0.00, 0.00, 0.00, 0.00, 0.00),
    }
)

#: Table 5 — Julia (single prompt variant).
_TABLE5 = _rows(
    {
        "julia.threads": (0.75, 0.25, 0.50, 0.00, 0.00, 0.00),
        "julia.cuda": (0.75, 0.50, 0.50, 0.25, 0.25, 0.00),
        "julia.amdgpu": (0.00, 0.00, 0.00, 0.25, 0.00, 0.00),
        "julia.kernelabstractions": (0.25, 0.25, 0.25, 0.25, 0.25, 0.00),
    }
)

#: All published tables, keyed by (language, use_postfix).
PAPER_TABLES: dict[tuple[str, bool], dict[str, dict[str, float]]] = {
    ("cpp", False): _TABLE2_BARE,
    ("cpp", True): _TABLE2_KEYWORD,
    ("fortran", False): _TABLE3_BARE,
    ("fortran", True): _TABLE3_KEYWORD,
    ("python", False): _TABLE4_BARE,
    ("python", True): _TABLE4_KEYWORD,
    ("julia", False): _TABLE5,
}


def paper_table(language: str, *, use_postfix: bool) -> dict[str, dict[str, float]]:
    """The published table half for one language and prompt variant."""
    key = (language.lower(), use_postfix)
    if key not in PAPER_TABLES:
        raise KeyError(f"the paper has no table for language={language!r} use_postfix={use_postfix}")
    return PAPER_TABLES[key]


def paper_score(model_uid: str, kernel: str, *, use_postfix: bool) -> float:
    """The published score of one cell."""
    language = model_uid.split(".", 1)[0]
    table = paper_table(language, use_postfix=use_postfix)
    return table[model_uid][kernel]


def paper_cells(language: str, *, use_postfix: bool) -> list[tuple[str, str, float]]:
    """Flat (model_uid, kernel, score) triples for one table half."""
    table = paper_table(language, use_postfix=use_postfix)
    return [
        (model_uid, kernel, score)
        for model_uid, row in table.items()
        for kernel, score in row.items()
    ]
