"""Aggregation of per-cell scores into the averages plotted in Figures 2-6.

The paper's per-language figures show two panels: the average score per
kernel (over all programming models and both prompt variants) and the average
score per programming model (over all kernels and both variants).  Figure 6
shows the same two views across the whole study: per kernel and per language.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.runner import ResultSet
from repro.kernels.registry import STOCK_KERNEL_NAMES, kernel_names
from repro.models.languages import language_names
from repro.models.programming_models import models_for_language

__all__ = [
    "kernel_averages",
    "model_averages",
    "language_averages",
    "overall_average",
    "postfix_effect",
]


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def kernel_averages(results: ResultSet, *, language: str | None = None) -> "OrderedDict[str, float]":
    """Average score per kernel, in canonical kernel order.

    Stock kernels always appear (0.0 when absent, as before); extension
    kernels appear only when the results actually contain them, so stock
    result sets aggregate identically whether or not an extended grid is
    registered in the process.
    """
    out: "OrderedDict[str, float]" = OrderedDict()
    for kernel in kernel_names(language):
        subset = results.filter(language=language, kernel=kernel)
        if not len(subset) and kernel not in STOCK_KERNEL_NAMES:
            continue
        out[kernel] = _mean(subset.scores())
    return out


def model_averages(results: ResultSet, language: str) -> "OrderedDict[str, float]":
    """Average score per programming model of one language, in table order."""
    out: "OrderedDict[str, float]" = OrderedDict()
    for model in models_for_language(language):
        subset = results.filter(language=language, model=model.uid)
        out[model.uid] = _mean(subset.scores())
    return out


def language_averages(results: ResultSet) -> "OrderedDict[str, float]":
    """Average score per language (Figure 6, bottom panel)."""
    out: "OrderedDict[str, float]" = OrderedDict()
    for language in language_names():
        subset = results.filter(language=language)
        out[language] = _mean(subset.scores())
    return out


def overall_average(results: ResultSet) -> float:
    """Grand mean over every evaluated cell."""
    return _mean(results.scores())


def postfix_effect(results: ResultSet, language: str) -> dict[str, float]:
    """Mean score without and with the post-fix keyword, plus the delta.

    Languages without a keyword variant return identical values and a zero
    delta.
    """
    bare = results.filter(language=language, use_postfix=False)
    keyed = results.filter(language=language, use_postfix=True)
    bare_mean = _mean(bare.scores())
    keyed_mean = _mean(keyed.scores()) if len(keyed) else bare_mean
    return {
        "without_keyword": bare_mean,
        "with_keyword": keyed_mean,
        "delta": keyed_mean - bare_mean,
    }
