"""Grid runner: evaluate every cell of the Table 1 experiment grid."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.codex.config import DEFAULT_SEED, CodexConfig
from repro.codex.engine import SimulatedCodex
from repro.core.evaluator import CellResult, PromptEvaluator
from repro.models.grid import ExperimentCell, cells_for_language, experiment_grid

__all__ = ["ResultSet", "EvaluationRunner"]


@dataclass
class ResultSet:
    """A collection of per-cell results with convenient lookups."""

    results: list[CellResult] = field(default_factory=list)
    seed: int = DEFAULT_SEED

    def add(self, result: CellResult) -> None:
        self.results.append(result)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    # -- lookups -----------------------------------------------------------------
    def score(self, model_uid: str, kernel: str, *, use_postfix: bool) -> float:
        """The rubric score of one cell (KeyError when absent)."""
        for result in self.results:
            cell = result.cell
            if cell.model == model_uid and cell.kernel == kernel and cell.use_postfix == use_postfix:
                return result.score
        raise KeyError(f"no result for {model_uid}:{kernel} use_postfix={use_postfix}")

    def filter(
        self,
        *,
        language: str | None = None,
        model: str | None = None,
        kernel: str | None = None,
        use_postfix: bool | None = None,
    ) -> "ResultSet":
        """Subset of the results matching the given criteria."""
        out = ResultSet(seed=self.seed)
        for result in self.results:
            cell = result.cell
            if language is not None and cell.language != language:
                continue
            if model is not None and cell.model != model:
                continue
            if kernel is not None and cell.kernel != kernel:
                continue
            if use_postfix is not None and cell.use_postfix != use_postfix:
                continue
            out.add(result)
        return out

    def scores(self) -> list[float]:
        return [result.score for result in self.results]

    def mean_score(self) -> float:
        values = self.scores()
        return sum(values) / len(values) if values else 0.0

    def to_records(self) -> list[dict]:
        return [result.to_record() for result in self.results]


@dataclass
class EvaluationRunner:
    """Runs the evaluation over languages or the full grid."""

    config: CodexConfig = field(default_factory=CodexConfig)
    seed: int = DEFAULT_SEED
    progress: Callable[[CellResult], None] | None = None
    evaluator: PromptEvaluator | None = None

    def __post_init__(self) -> None:
        if self.evaluator is None:
            engine = SimulatedCodex(config=self.config, seed=self.seed)
            self.evaluator = PromptEvaluator(engine=engine)

    # -- entry points ---------------------------------------------------------------
    def run_cells(self, cells: Iterable[ExperimentCell]) -> ResultSet:
        results = ResultSet(seed=self.seed)
        for cell in cells:
            result = self.evaluator.evaluate_cell(cell)
            results.add(result)
            if self.progress is not None:
                self.progress(result)
        return results

    def run_language(
        self,
        language: str,
        *,
        kernels: Iterable[str] | None = None,
        include_postfix: bool | None = None,
    ) -> ResultSet:
        """Evaluate one language's table (Table 2, 3, 4 or 5)."""
        return self.run_cells(
            cells_for_language(language, kernels=kernels, include_postfix=include_postfix)
        )

    def run_full_grid(self) -> ResultSet:
        """Evaluate the complete Table 1 grid (all languages and variants)."""
        return self.run_cells(experiment_grid())
