"""Grid runner: evaluate every cell of the Table 1 experiment grid.

The runner dispatches cell evaluation to one of three executor backends:

``serial``
    Evaluate in the calling thread (the default, zero overhead).
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor` over chunks of cells.
    All threads share one evaluator — the engine is stateless per cell (see
    the per-cell seeding contract in :mod:`repro.codex.engine`) and the
    analyzer memo is only ever extended with deterministic values.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor`; each worker builds
    its own evaluator from ``(config, seed)`` once and evaluates chunks of
    cells.  Use this to put multiple cores behind the sandbox-heavy Python
    cells.  When the pool would resolve to a single worker (one-core host),
    evaluation runs in-process instead — a one-worker pool can only add
    fork/IPC overhead on top of serial work.

Because every cell owns an order-independent random stream, all three
backends produce byte-identical :meth:`ResultSet.to_records` output; results
are always returned in the submission order of the cells.
"""

from __future__ import annotations

import contextlib
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.analysis.analyzer import SuggestionAnalyzer
from repro.analysis.store import VerdictStore
from repro.codex.config import DEFAULT_SEED, CodexConfig
from repro.codex.engine import SimulatedCodex
from repro.core.evaluator import CellResult, PromptEvaluator
from repro.models.grid import (
    ExperimentCell,
    canonical_cell_position,
    cells_for_language,
    experiment_grid,
)
from repro.sandbox.executor import sandbox_execution_count

__all__ = [
    "ResultSet",
    "RecordResult",
    "EvaluationRunner",
    "BACKENDS",
    "MIN_CHUNK_CELLS",
    "default_chunk_size",
]

#: Executor backends understood by :class:`EvaluationRunner`.
BACKENDS: tuple[str, ...] = ("serial", "thread", "process")


class RecordResult:
    """A persisted per-cell record re-hydrated as a :class:`ResultSet` element.

    Carries exactly the flat dictionary :meth:`CellResult.to_record` produced
    (suggestions and verdicts are not persisted), so a JSON or CSV round trip
    reproduces ``to_records()`` verbatim — including the postfix cells, whose
    keyword is stored in the record rather than re-derived.
    """

    __slots__ = ("cell", "_record")

    def __init__(self, record: dict) -> None:
        self._record = dict(record)
        self.cell = ExperimentCell(
            language=record["language"],
            model=record["model"],
            kernel=record["kernel"],
            use_postfix=bool(record["use_postfix"]),
        )

    @property
    def score(self) -> float:
        return self._record["score"]

    def to_record(self) -> dict:
        return dict(self._record)


@dataclass
class ResultSet:
    """A collection of per-cell results with indexed lookups.

    ``add`` maintains dict indexes keyed on the cell coordinates, so
    :meth:`score` is O(1) and :meth:`filter` only scans the candidate list
    of the most selective criterion instead of the whole collection.
    Elements are :class:`CellResult`s when produced by a runner, or
    :class:`RecordResult`s when re-hydrated from persisted records.
    """

    results: list[CellResult] = field(default_factory=list)
    seed: int = DEFAULT_SEED
    #: (model, kernel, use_postfix) -> result, for the O(1) score lookup.
    _by_cell: dict[tuple[str, str, bool], CellResult] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: field name -> field value -> results, for indexed filtering.
    _by_field: dict[str, dict[object, list[CellResult]]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        preloaded, self.results = self.results, []
        for result in preloaded:
            self.add(result)

    def add(self, result: CellResult) -> None:
        self.results.append(result)
        cell = result.cell
        self._by_cell[(cell.model, cell.kernel, cell.use_postfix)] = result
        for name in ("language", "model", "kernel", "use_postfix"):
            index = self._by_field.setdefault(name, {})
            index.setdefault(getattr(cell, name), []).append(result)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    # -- lookups -----------------------------------------------------------------
    def score(self, model_uid: str, kernel: str, *, use_postfix: bool) -> float:
        """The rubric score of one cell (KeyError when absent)."""
        result = self._by_cell.get((model_uid, kernel, use_postfix))
        if result is None:
            raise KeyError(f"no result for {model_uid}:{kernel} use_postfix={use_postfix}")
        return result.score

    def filter(
        self,
        *,
        language: str | None = None,
        model: str | None = None,
        kernel: str | None = None,
        use_postfix: bool | None = None,
    ) -> "ResultSet":
        """Subset of the results matching the given criteria."""
        criteria = {
            name: value
            for name, value in (
                ("language", language),
                ("model", model),
                ("kernel", kernel),
                ("use_postfix", use_postfix),
            )
            if value is not None
        }
        candidates: Sequence[CellResult] = self.results
        if criteria:
            # Scan only the shortest matching index bucket; results keep
            # insertion order because every bucket preserves it.
            buckets = [
                self._by_field.get(name, {}).get(value, []) for name, value in criteria.items()
            ]
            candidates = min(buckets, key=len)
        out = ResultSet(seed=self.seed)
        for result in candidates:
            if all(getattr(result.cell, name) == value for name, value in criteria.items()):
                out.add(result)
        return out

    def scores(self) -> list[float]:
        return [result.score for result in self.results]

    def mean_score(self) -> float:
        values = self.scores()
        return sum(values) / len(values) if values else 0.0

    def to_records(self) -> list[dict]:
        return [result.to_record() for result in self.results]

    # -- persistence and sharding ---------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-serialisable payload (inverse of :meth:`from_payload`)."""
        return {"format": "repro.resultset/v1", "seed": self.seed, "records": self.to_records()}

    @classmethod
    def from_payload(cls, payload: dict | Iterable[dict], *, seed: int | None = None) -> "ResultSet":
        """Re-hydrate a result set from :meth:`to_payload` output or from a bare
        list of records (as loaded back from ``save_records_json`` /
        ``save_records_csv`` files).  Elements become :class:`RecordResult`s:
        ``to_records()``, ``score()`` and ``filter()`` behave exactly as on the
        originating set; suggestions and verdicts are not reconstructed.
        """
        if isinstance(payload, dict):
            records = payload["records"]
            if seed is None:
                seed = payload.get("seed", DEFAULT_SEED)
        else:
            records = list(payload)
            if seed is None:
                seed = DEFAULT_SEED
        out = cls(seed=seed)
        for record in records:
            out.add(RecordResult(record))
        return out

    def merge_in(self, *parts: "ResultSet") -> "ResultSet":
        """Merge more partial sets into this one, in place, canonically.

        The incremental form of :meth:`merge` used by streamed shard
        merging (:class:`repro.api.IncrementalMerge`): after every call the
        set holds the union of its previous results and all ``parts``,
        sorted into the canonical grid enumeration — so the final records
        are identical whatever order the parts arrive in.  Seed and
        duplicate-cell validation are exactly :meth:`merge`'s; on error the
        set is left unchanged.  Returns ``self`` for chaining.
        """
        merged = ResultSet.merge(self, *parts)
        self.results = merged.results
        self._by_cell = merged._by_cell
        self._by_field = merged._by_field
        return self

    @classmethod
    def merge(cls, *parts: "ResultSet") -> "ResultSet":
        """Combine disjoint partial result sets into one canonically-ordered set.

        Parts may arrive in any order (shards finish at different times on
        different machines): the merged set is sorted into the canonical
        experiment-grid enumeration, so any partition of the grid merges back
        to the exact record sequence of an unsharded run.  All parts must
        share one seed, and no two parts may contain the same cell.  Cells
        outside the standard grid keep their encounter order after the known
        ones.  Completeness is *not* checked here — that is the job of
        :class:`repro.api.ShardManifest`.
        """
        if not parts:
            raise ValueError("merge needs at least one ResultSet")
        seeds = {part.seed for part in parts}
        if len(seeds) > 1:
            raise ValueError(f"cannot merge result sets with mixed seeds: {sorted(seeds)}")
        seen: set[tuple[str, str, bool]] = set()
        keyed: list[tuple[tuple[int, int], CellResult | RecordResult]] = []
        for encounter, result in enumerate(r for part in parts for r in part):
            cell = result.cell
            key = (cell.model, cell.kernel, cell.use_postfix)
            if key in seen:
                raise ValueError(f"duplicate cell in merge: {cell.cell_id}")
            seen.add(key)
            position = canonical_cell_position(*key)
            sort_key = (0, position) if position is not None else (1, encounter)
            keyed.append((sort_key, result))
        merged = cls(seed=seeds.pop())
        for _, result in sorted(keyed, key=lambda pair: pair[0]):
            merged.add(result)
        return merged


# ---------------------------------------------------------------------------
# Process-backend worker plumbing.  Workers rebuild a default evaluator from
# (config, seed) once in the initializer; per-cell determinism makes the
# partitioning of cells across workers irrelevant to the results.
# ---------------------------------------------------------------------------

_WORKER_EVALUATOR: PromptEvaluator | None = None


def _init_worker(config: CodexConfig, seed: int, store_path: str | None) -> None:
    global _WORKER_EVALUATOR
    engine = SimulatedCodex(config=config, seed=seed)
    analyzer = SuggestionAnalyzer(
        store=None if store_path is None else VerdictStore(store_path)
    )
    _WORKER_EVALUATOR = PromptEvaluator(engine=engine, analyzer=analyzer)


def _evaluate_chunk_in_worker(
    cells: list[ExperimentCell],
) -> tuple[list[CellResult], int, int]:
    """Evaluate a chunk in a worker; returns (results, executions, store hits).

    The deltas let the parent runner aggregate sandbox-execution and
    verdict-store-hit counts across process boundaries (workers are
    single-threaded, so per-chunk deltas are exact).
    """
    assert _WORKER_EVALUATOR is not None, "worker initializer did not run"
    store = _WORKER_EVALUATOR.analyzer.store
    executions_before = sandbox_execution_count()
    hits_before = store.hits if store is not None else 0
    results = [_WORKER_EVALUATOR.evaluate_cell(cell) for cell in cells]
    executions = sandbox_execution_count() - executions_before
    hits = (store.hits - hits_before) if store is not None else 0
    return results, executions, hits


def _chunked(cells: list[ExperimentCell], chunk_size: int) -> list[list[ExperimentCell]]:
    return [cells[i : i + chunk_size] for i in range(0, len(cells), chunk_size)]


#: Smallest chunk the default dispatch policy will cut.  Below this the
#: per-chunk overhead (pickling, executor wakeups, future bookkeeping) is
#: comparable to evaluating the cells, so finer chunks make the parallel
#: backends *slower* than serial on the stock grid.
MIN_CHUNK_CELLS = 8


def default_chunk_size(n_cells: int, workers: int) -> int:
    """Cells per dispatched work item when ``chunk_size`` is not given.

    Targets ~2 chunks per worker — enough slack for stragglers (the
    sandbox-heavy Python cells) to rebalance, without shredding the grid
    into confetti — and never cuts below :data:`MIN_CHUNK_CELLS`; for small
    grids idle workers beat per-chunk overhead.
    """
    return max(MIN_CHUNK_CELLS, -(-n_cells // (max(1, workers) * 2)))


@dataclass
class EvaluationRunner:
    """Runs the evaluation over languages or the full grid.

    Parameters
    ----------
    backend:
        ``"serial"`` (default), ``"thread"`` or ``"process"``.
    max_workers:
        Worker count for the parallel backends (executor default when None).
    chunk_size:
        Cells per dispatched work item; defaults to
        :func:`default_chunk_size` (~2 chunks per worker with a floor of
        :data:`MIN_CHUNK_CELLS`) so stragglers rebalance without paying
        per-chunk overhead comparable to the work itself.
    progress:
        Callback invoked with each :class:`CellResult`; under the parallel
        backends it fires as chunks complete, in submission order.
    verdict_store:
        Optional persistent :class:`~repro.analysis.store.VerdictStore` (or
        its directory path) shared by every worker this runner creates:
        serial/thread evaluation attaches it to the runner's analyzer, and
        process-backend workers each open the same directory, so no worker
        re-executes a suggestion any other process already analyzed.
    """

    config: CodexConfig = field(default_factory=CodexConfig)
    seed: int = DEFAULT_SEED
    progress: Callable[[CellResult], None] | None = None
    evaluator: PromptEvaluator | None = None
    backend: str = "serial"
    max_workers: int | None = None
    chunk_size: int | None = None
    verdict_store: VerdictStore | str | Path | None = None
    #: Lazily-created executor, kept alive across run_cells calls so repeated
    #: runs (e.g. one language table after another) reuse the worker pool and
    #: its per-worker state instead of paying spawn + corpus setup each time.
    _executor: Executor | None = field(default=None, init=False, repr=False, compare=False)
    #: Actual worker count of the live pool (set when the pool is created).
    _workers: int = field(default=0, init=False, repr=False, compare=False)
    #: Sandbox executions / verdict-store hits attributed to this runner's
    #: runs, aggregated across backends (workers report per-chunk deltas).
    _sandbox_executions: int = field(default=0, init=False, repr=False, compare=False)
    _store_hits: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; choose from {BACKENDS}")
        self.verdict_store = VerdictStore.coerce(self.verdict_store)
        self._custom_evaluator = self.evaluator is not None
        if self.backend == "process" and self._custom_evaluator:
            raise ValueError(
                "the process backend rebuilds evaluators from (config, seed) in each "
                "worker and cannot ship a custom evaluator; use serial or thread"
            )
        if self._custom_evaluator and self.verdict_store is not None:
            raise ValueError(
                "verdict_store cannot be combined with a custom evaluator; attach the "
                "store to the evaluator's analyzer instead"
            )
        if self.evaluator is None:
            engine = SimulatedCodex(config=self.config, seed=self.seed)
            self.evaluator = PromptEvaluator(
                engine=engine, analyzer=SuggestionAnalyzer(store=self.verdict_store)
            )

    @property
    def sandbox_executions(self) -> int:
        """Suggestion modules executed for this runner's cells (all backends)."""
        return self._sandbox_executions

    @property
    def store_hits(self) -> int:
        """Verdicts served from the persistent store (all backends)."""
        return self._store_hits

    # -- entry points ---------------------------------------------------------------
    def run_cells(self, cells: Iterable[ExperimentCell]) -> ResultSet:
        cell_list = list(cells)
        if self.backend == "serial":
            return self._run_serial(cell_list)
        return self._run_executor(cell_list)

    def run_language(
        self,
        language: str,
        *,
        kernels: Iterable[str] | None = None,
        include_postfix: bool | None = None,
    ) -> ResultSet:
        """Evaluate one language's table (Table 2, 3, 4 or 5)."""
        return self.run_cells(
            cells_for_language(language, kernels=kernels, include_postfix=include_postfix)
        )

    def run_full_grid(self) -> ResultSet:
        """Evaluate the complete Table 1 grid (all languages and variants)."""
        return self.run_cells(experiment_grid())

    # -- backends -------------------------------------------------------------------
    def _run_serial(self, cells: list[ExperimentCell]) -> ResultSet:
        results = ResultSet(seed=self.seed)
        with self._count_local_work():
            for cell in cells:
                self._emit(results, self.evaluator.evaluate_cell(cell))
        return results

    def _run_executor(self, cells: list[ExperimentCell]) -> ResultSet:
        results = ResultSet(seed=self.seed)
        if not cells:
            return results
        if self.backend == "process" and self._resolved_workers() == 1:
            # A one-worker subprocess pool is serial evaluation plus fork,
            # IPC and result-pickling overhead — it can never beat the
            # calling thread.  Evaluate in-process instead (byte-identical
            # by the determinism contract), so the process backend at least
            # breaks even on single-core hosts.
            return self._run_serial(cells)
        executor = self._get_executor()
        chunk_size = self.chunk_size or default_chunk_size(len(cells), self._workers)
        chunks = _chunked(cells, chunk_size)
        if self.backend == "thread":
            evaluator = self.evaluator
            evaluate = lambda chunk: [evaluator.evaluate_cell(cell) for cell in chunk]
        else:
            evaluate = _evaluate_chunk_in_worker
        counting = (
            contextlib.nullcontext() if self.backend == "process" else self._count_local_work()
        )
        with counting:
            futures = [executor.submit(evaluate, chunk) for chunk in chunks]
            # Collect in submission order: the result list (and therefore
            # to_records) is identical to a serial run regardless of which
            # chunk finishes first.
            for future in futures:
                payload = future.result()
                if self.backend == "process":
                    chunk_results, executions, hits = payload
                    self._sandbox_executions += executions
                    self._store_hits += hits
                else:
                    chunk_results = payload
                for result in chunk_results:
                    self._emit(results, result)
        return results

    @contextlib.contextmanager
    def _count_local_work(self):
        """Attribute in-process sandbox executions / store hits to this runner.

        Wraps every in-process evaluation path (serial, thread chunks, and
        the process backend's single-worker shortcut); process-pool work is
        counted from the per-chunk deltas the workers report instead.
        """
        executions_before = sandbox_execution_count()
        hits_before = self.verdict_store.hits if self.verdict_store is not None else 0
        try:
            yield
        finally:
            self._sandbox_executions += sandbox_execution_count() - executions_before
            if self.verdict_store is not None:
                self._store_hits += self.verdict_store.hits - hits_before

    def _resolved_workers(self) -> int:
        """Worker count of the (eventual) pool: the explicit ``max_workers``
        or one per core up to 8 — from the hardware, never from the first
        run's cell count, because the pool outlives run_cells calls of very
        different sizes."""
        return self.max_workers or min(8, os.cpu_count() or 1)

    def _get_executor(self) -> Executor:
        if self._executor is None:
            self._workers = self._resolved_workers()
            if self.backend == "thread":
                self._executor = ThreadPoolExecutor(max_workers=self._workers)
            else:
                store_path = (
                    None if self.verdict_store is None else str(self.verdict_store.path)
                )
                self._executor = ProcessPoolExecutor(
                    max_workers=self._workers,
                    initializer=_init_worker,
                    initargs=(self.config, self.seed, store_path),
                )
        return self._executor

    def close(self) -> None:
        """Shut down the worker pool (idempotent; serial runners are no-ops).

        Pools left open are reaped at interpreter exit, but callers issuing
        many parallel runs should close runners (or use them as context
        managers) once done.
        """
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "EvaluationRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _emit(self, results: ResultSet, result: CellResult) -> None:
        results.add(result)
        if self.progress is not None:
            self.progress(result)
