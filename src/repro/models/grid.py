"""The experiment grid: every (language, model, kernel, postfix) cell.

This module materialises Table 1 of the paper as data: the full cartesian
grid of prompts that the evaluation runs.  Each cell corresponds to a single
score in Tables 2-5.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator

from repro.kernels.registry import kernel_names
from repro.models.keywords import has_postfix_variant, postfix_keyword
from repro.models.languages import get_language, language_names
from repro.models.programming_models import ProgrammingModel, get_model, models_for_language

__all__ = [
    "ExperimentCell",
    "experiment_grid",
    "table1_rows",
    "cells_for_language",
    "canonical_cell_position",
]


@dataclass(frozen=True)
class ExperimentCell:
    """A single prompt evaluation: one cell of one of the paper's tables."""

    #: Canonical language name ("cpp", "fortran", "python", "julia").
    language: str
    #: Programming model uid ("cpp.openmp", ...).
    model: str
    #: Kernel canonical name ("axpy", ...).
    kernel: str
    #: Whether the prompt includes the language's post-fix keyword.
    use_postfix: bool

    @property
    def postfix(self) -> str:
        """The actual post-fix keyword for this cell ('' when unused)."""
        return postfix_keyword(self.language) if self.use_postfix else ""

    @property
    def cell_id(self) -> str:
        """Stable identifier used for seeding and persistence."""
        suffix = "+kw" if self.use_postfix else ""
        return f"{self.model}:{self.kernel}{suffix}"

    def describe(self) -> str:
        model = get_model(self.model)
        lang = get_language(self.language)
        kw = f" + '{self.postfix}'" if self.use_postfix else ""
        return f"{lang.display_name} / {model.display_name} / {self.kernel.upper()}{kw}"


def cells_for_language(
    language: str,
    *,
    kernels: Iterable[str] | None = None,
    include_postfix: bool | None = None,
) -> list[ExperimentCell]:
    """All cells for one language.

    ``include_postfix`` limits the grid to the bare (False) or keyword (True)
    variant; by default both variants are produced when the language has a
    keyword variant, otherwise only the bare variant.
    """
    lang = get_language(language)
    kernel_list = tuple(kernels) if kernels is not None else kernel_names(lang.name)
    if include_postfix is None:
        postfix_options = (False, True) if has_postfix_variant(lang.name) else (False,)
    else:
        if include_postfix and not has_postfix_variant(lang.name):
            raise ValueError(f"language {lang.name!r} has no post-fix keyword variant")
        postfix_options = (include_postfix,)
    cells: list[ExperimentCell] = []
    for use_postfix in postfix_options:
        for model in models_for_language(lang.name):
            for kernel in kernel_list:
                cells.append(
                    ExperimentCell(
                        language=lang.name,
                        model=model.uid,
                        kernel=kernel,
                        use_postfix=use_postfix,
                    )
                )
    return cells


def experiment_grid(
    *,
    languages: Iterable[str] | None = None,
    kernels: Iterable[str] | None = None,
) -> list[ExperimentCell]:
    """The full evaluation grid across all languages (the union of Tables 2-5)."""
    langs = tuple(languages) if languages is not None else language_names()
    cells: list[ExperimentCell] = []
    for language in langs:
        cells.extend(cells_for_language(language, kernels=kernels))
    return cells


@lru_cache(maxsize=1)
def _canonical_cell_positions() -> dict[tuple[str, str, bool], int]:
    return {
        (cell.model, cell.kernel, cell.use_postfix): index
        for index, cell in enumerate(experiment_grid())
    }


def canonical_cell_position(model: str, kernel: str, use_postfix: bool) -> int | None:
    """Position of a cell in the canonical full-grid enumeration.

    This is the total order that sharded partial results are merged back
    into (see :meth:`repro.core.runner.ResultSet.merge`); ``None`` when the
    coordinates are not part of the standard Table 1 grid.
    """
    return _canonical_cell_positions().get((model, kernel, use_postfix))


def table1_rows() -> Iterator[tuple[str, str, str]]:
    """Rows of the paper's Table 1: (language display, model display, post-fix).

    Useful for rendering the experimental-scope table in reports and for
    sanity tests that the registry matches the paper's setup.
    """
    for language in language_names():
        lang = get_language(language)
        for model in models_for_language(language):
            postfixes = []
            if "offload" in model.uid:
                postfixes.append("offload")
            if lang.postfix_keyword:
                postfixes.append(lang.postfix_keyword)
            yield (lang.display_name, model.display_name, ", ".join(postfixes))


def _model_or_none(uid: str) -> ProgrammingModel | None:  # pragma: no cover - helper
    try:
        return get_model(uid)
    except KeyError:
        return None
