"""Post-fix keyword handling.

The paper's prompt pattern is ``<kernel> <programming model> (<postfix>)``
where the optional post-fix is a language "code keyword": ``function`` for
C++, ``subroutine`` for Fortran, ``def`` for Python, and nothing for Julia
(the authors report that Julia prompts showed little keyword sensitivity and
omit the variant).
"""

from __future__ import annotations

from repro.models.languages import get_language

__all__ = ["postfix_keyword", "has_postfix_variant", "CUDA_COMMUNITY_KEYWORDS"]

#: Keywords the CUDA community actually uses instead of ``function``; the
#: paper notes that prompting CUDA with "kernel" or "__global__" produced
#: better results than "function".  These are exposed for the prompt
#: engineering example and the keyword ablation bench.
CUDA_COMMUNITY_KEYWORDS: tuple[str, ...] = ("kernel", "__global__")


def postfix_keyword(language: str) -> str:
    """The post-fix keyword used for ``language`` ('' when none is used)."""
    return get_language(language).postfix_keyword


def has_postfix_variant(language: str) -> bool:
    """Whether the paper evaluates a with-keyword prompt variant for ``language``."""
    return bool(get_language(language).postfix_keyword)
