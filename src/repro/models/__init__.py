"""Languages, parallel programming models and the Table 1 experiment grid."""

from __future__ import annotations

from repro.models.languages import (
    LANGUAGES,
    Language,
    get_language,
    language_names,
)
from repro.models.programming_models import (
    PROGRAMMING_MODELS,
    ExecutionTarget,
    ProgrammingModel,
    get_model,
    models_for_language,
    model_names,
)
from repro.models.keywords import postfix_keyword, has_postfix_variant
from repro.models.grid import ExperimentCell, experiment_grid, table1_rows

__all__ = [
    "Language",
    "LANGUAGES",
    "get_language",
    "language_names",
    "ProgrammingModel",
    "ExecutionTarget",
    "PROGRAMMING_MODELS",
    "get_model",
    "models_for_language",
    "model_names",
    "postfix_keyword",
    "has_postfix_variant",
    "ExperimentCell",
    "experiment_grid",
    "table1_rows",
]
