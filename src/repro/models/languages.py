"""The four evaluated host languages.

Each :class:`Language` carries exactly the attributes the Copilot workflow in
the paper depends on: the file extension (Visual Studio Code infers the
language from the open file and makes it part of the prompt prefix), the
line-comment prefix used to phrase the prompt, and the optional "code
keyword" post-fix the authors append to sharpen the prompt (``function``,
``subroutine``, ``def``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Language", "LANGUAGES", "get_language", "language_names"]


@dataclass(frozen=True)
class Language:
    """A host programming language in the evaluation."""

    #: Canonical lowercase identifier (``"cpp"``, ``"fortran"``, ``"python"``, ``"julia"``).
    name: str
    #: Human-readable name as printed in the paper ("C++", "Fortran", ...).
    display_name: str
    #: File extension used to open the prompt file in the editor.
    file_extension: str
    #: Line comment prefix used to write the prompt.
    comment_prefix: str
    #: The post-fix keyword the paper appends for this language ("" if none).
    postfix_keyword: str
    #: Whether the paper found the language's prompts sensitive to the keyword.
    keyword_sensitive: bool
    #: Whether the language is a general-purpose mainstream language (C++,
    #: Python) or a domain-targeted one (Fortran, Julia).  The paper uses this
    #: distinction when discussing popularity vs. targeted quality.
    general_purpose: bool

    def prompt_filename(self, kernel: str) -> str:
        """The file name the prompt would be typed into (e.g. ``axpy.cpp``)."""
        return f"{kernel}.{self.file_extension}"

    def comment(self, text: str) -> str:
        """Render ``text`` as a line comment in this language."""
        return f"{self.comment_prefix} {text}"


LANGUAGES: dict[str, Language] = {
    "cpp": Language(
        name="cpp",
        display_name="C++",
        file_extension="cpp",
        comment_prefix="//",
        postfix_keyword="function",
        keyword_sensitive=True,
        general_purpose=True,
    ),
    "fortran": Language(
        name="fortran",
        display_name="Fortran",
        file_extension="f90",
        comment_prefix="!",
        postfix_keyword="subroutine",
        keyword_sensitive=True,
        general_purpose=False,
    ),
    "python": Language(
        name="python",
        display_name="Python",
        file_extension="py",
        comment_prefix="#",
        postfix_keyword="def",
        keyword_sensitive=True,
        general_purpose=True,
    ),
    "julia": Language(
        name="julia",
        display_name="Julia",
        file_extension="jl",
        comment_prefix="#",
        postfix_keyword="",
        keyword_sensitive=False,
        general_purpose=False,
    ),
}

_ALIASES = {
    "c++": "cpp",
    "cxx": "cpp",
    "cc": "cpp",
    "f90": "fortran",
    "f": "fortran",
    "py": "python",
    "jl": "julia",
}


def get_language(name: str) -> Language:
    """Look up a language by canonical name, alias or display name."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key in LANGUAGES:
        return LANGUAGES[key]
    for lang in LANGUAGES.values():
        if lang.display_name.lower() == key:
            return lang
    raise KeyError(f"unknown language {name!r}; known: {', '.join(LANGUAGES)}")


def language_names() -> tuple[str, ...]:
    """Canonical language order used by the paper (C++, Fortran, Python, Julia)."""
    return tuple(LANGUAGES.keys())
