"""Registry of the parallel programming models evaluated in the paper.

The set matches Table 1 plus SyCL, which appears in the C++ results
(Table 2).  Each model records the attributes that matter downstream:

* which host language it belongs to,
* the execution target (CPU threads, GPU offload, or both),
* the *detection markers* — tokens whose presence in a code suggestion
  identifies the suggestion as using this model (pragmas, API namespaces,
  decorators, macros).  The static analyzers in :mod:`repro.analysis` use
  these markers to decide whether a suggestion uses the requested model or a
  different one, which is exactly the distinction the paper's rubric draws
  between the *novice* (0.25) and *learner* (0.5) levels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.models.languages import get_language

__all__ = [
    "ExecutionTarget",
    "ProgrammingModel",
    "PROGRAMMING_MODELS",
    "get_model",
    "models_for_language",
    "model_names",
    "STOCK_MODEL_UIDS",
    "register_model",
    "unregister_model",
]


class ExecutionTarget(enum.Enum):
    """Hardware target of a programming model."""

    CPU = "cpu"
    GPU = "gpu"
    BOTH = "both"


@dataclass(frozen=True)
class ProgrammingModel:
    """A parallel programming model (or de-facto standard library)."""

    #: Canonical identifier, unique across languages (e.g. ``"cpp.openmp"``).
    uid: str
    #: Short name used in prompts and tables (e.g. ``"OpenMP"``).
    display_name: str
    #: Host language canonical name.
    language: str
    #: The exact phrase used in the prompt (usually the display name, but
    #: e.g. OpenMP offload adds the word "offload").
    prompt_phrase: str
    #: Hardware target.
    target: ExecutionTarget
    #: Year the model (or the binding) became broadly usable; a maturity proxy.
    introduced: int
    #: Tokens identifying a suggestion as using this model.
    detection_markers: tuple[str, ...] = ()
    #: Markers that, if present, contradict this model (e.g. OpenMP offload
    #: requires a ``target`` clause on top of plain OpenMP pragmas).
    required_markers: tuple[str, ...] = ()
    #: Extra notes (vendor, deprecations) used in reports.
    notes: str = ""
    #: Free-form tags (e.g. "directive", "kernel-language", "library").
    tags: tuple[str, ...] = field(default_factory=tuple)

    @property
    def short_name(self) -> str:
        """The model identifier without the language prefix (``"openmp"``)."""
        return self.uid.split(".", 1)[1]

    def language_display(self) -> str:
        return get_language(self.language).display_name


def _m(*args, **kwargs) -> ProgrammingModel:
    return ProgrammingModel(*args, **kwargs)


#: All evaluated models, keyed by uid, in the order of the paper's tables.
PROGRAMMING_MODELS: dict[str, ProgrammingModel] = {
    m.uid: m
    for m in [
        # ----------------------------------------------------------- C++ ----
        _m(
            uid="cpp.openmp",
            display_name="OpenMP",
            language="cpp",
            prompt_phrase="OpenMP",
            target=ExecutionTarget.CPU,
            introduced=1998,
            detection_markers=("#pragma omp", "omp.h", "omp_get_num_threads"),
            required_markers=("#pragma omp",),
            tags=("directive",),
        ),
        _m(
            uid="cpp.openmp_offload",
            display_name="OpenMP offload",
            language="cpp",
            prompt_phrase="OpenMP offload",
            target=ExecutionTarget.GPU,
            introduced=2013,
            detection_markers=("#pragma omp target", "omp target teams"),
            required_markers=("#pragma omp target",),
            tags=("directive", "offload"),
        ),
        _m(
            uid="cpp.openacc",
            display_name="OpenACC",
            language="cpp",
            prompt_phrase="OpenACC",
            target=ExecutionTarget.GPU,
            introduced=2011,
            detection_markers=("#pragma acc", "openacc.h"),
            required_markers=("#pragma acc",),
            tags=("directive",),
        ),
        _m(
            uid="cpp.kokkos",
            display_name="Kokkos",
            language="cpp",
            prompt_phrase="Kokkos",
            target=ExecutionTarget.BOTH,
            introduced=2014,
            detection_markers=("Kokkos::", "Kokkos_Core.hpp", "KOKKOS_LAMBDA"),
            required_markers=("Kokkos::parallel_for", "Kokkos::parallel_reduce"),
            tags=("abstraction", "library"),
        ),
        _m(
            uid="cpp.cuda",
            display_name="CUDA",
            language="cpp",
            prompt_phrase="CUDA",
            target=ExecutionTarget.GPU,
            introduced=2007,
            detection_markers=("__global__", "cudaMalloc", "cudaMemcpy", "<<<", "blockIdx"),
            required_markers=("__global__",),
            notes="NVIDIA kernel language",
            tags=("kernel-language", "vendor"),
        ),
        _m(
            uid="cpp.hip",
            display_name="HIP",
            language="cpp",
            prompt_phrase="HIP",
            target=ExecutionTarget.GPU,
            introduced=2016,
            detection_markers=("hipMalloc", "hipMemcpy", "hipLaunchKernelGGL", "hip_runtime.h"),
            required_markers=("__global__",),
            notes="AMD ROCm kernel language",
            tags=("kernel-language", "vendor"),
        ),
        _m(
            uid="cpp.thrust",
            display_name="Thrust",
            language="cpp",
            prompt_phrase="Thrust",
            target=ExecutionTarget.GPU,
            introduced=2009,
            detection_markers=("thrust::", "thrust/device_vector.h"),
            required_markers=("thrust::",),
            tags=("library",),
        ),
        _m(
            uid="cpp.sycl",
            display_name="SyCL",
            language="cpp",
            prompt_phrase="SyCL",
            target=ExecutionTarget.BOTH,
            introduced=2015,
            detection_markers=("sycl::", "CL/sycl.hpp", "queue.submit", "parallel_for"),
            required_markers=("sycl::",),
            tags=("abstraction",),
        ),
        # ------------------------------------------------------- Fortran ----
        _m(
            uid="fortran.openmp",
            display_name="OpenMP",
            language="fortran",
            prompt_phrase="OpenMP",
            target=ExecutionTarget.CPU,
            introduced=1997,
            detection_markers=("!$omp", "use omp_lib"),
            required_markers=("!$omp",),
            tags=("directive",),
        ),
        _m(
            uid="fortran.openmp_offload",
            display_name="OpenMP offload",
            language="fortran",
            prompt_phrase="OpenMP offload",
            target=ExecutionTarget.GPU,
            introduced=2013,
            detection_markers=("!$omp target", "!$omp target teams"),
            required_markers=("!$omp target",),
            tags=("directive", "offload"),
        ),
        _m(
            uid="fortran.openacc",
            display_name="OpenACC",
            language="fortran",
            prompt_phrase="OpenACC",
            target=ExecutionTarget.GPU,
            introduced=2011,
            detection_markers=("!$acc",),
            required_markers=("!$acc",),
            tags=("directive",),
        ),
        # -------------------------------------------------------- Python ----
        _m(
            uid="python.numpy",
            display_name="numpy",
            language="python",
            prompt_phrase="numpy",
            target=ExecutionTarget.CPU,
            introduced=2006,
            detection_markers=("import numpy", "np.", "numpy."),
            required_markers=("numpy",),
            notes="de-facto standard for scientific Python; not a parallel model per se",
            tags=("library",),
        ),
        _m(
            uid="python.numba",
            display_name="Numba",
            language="python",
            prompt_phrase="Numba",
            target=ExecutionTarget.BOTH,
            introduced=2015,
            detection_markers=("import numba", "from numba", "@njit", "@jit", "numba.cuda", "@cuda.jit", "prange"),
            required_markers=("numba",),
            notes="LLVM JIT; AMD GPU support deprecated",
            tags=("jit",),
        ),
        _m(
            uid="python.cupy",
            display_name="cuPy",
            language="python",
            prompt_phrase="cuPy",
            target=ExecutionTarget.GPU,
            introduced=2017,
            detection_markers=("import cupy", "cupy.", "cp.", "RawKernel", "ElementwiseKernel"),
            required_markers=("cupy",),
            tags=("library", "vendor"),
        ),
        _m(
            uid="python.pycuda",
            display_name="pyCUDA",
            language="python",
            prompt_phrase="pyCUDA",
            target=ExecutionTarget.GPU,
            introduced=2012,
            detection_markers=("import pycuda", "pycuda.autoinit", "SourceModule", "drv.", "gpuarray"),
            required_markers=("pycuda",),
            tags=("library", "vendor"),
        ),
        # --------------------------------------------------------- Julia ----
        _m(
            uid="julia.threads",
            display_name="Threads",
            language="julia",
            prompt_phrase="Threads",
            target=ExecutionTarget.CPU,
            introduced=2014,
            detection_markers=("Threads.@threads", "@threads", "Threads.nthreads"),
            required_markers=("@threads",),
            notes="part of Julia Base",
            tags=("base",),
        ),
        _m(
            uid="julia.cuda",
            display_name="CUDA",
            language="julia",
            prompt_phrase="CUDA",
            target=ExecutionTarget.GPU,
            introduced=2018,
            detection_markers=("using CUDA", "CuArray", "@cuda", "threadIdx", "blockIdx"),
            required_markers=("CUDA",),
            notes="CUDA.jl",
            tags=("vendor",),
        ),
        _m(
            uid="julia.amdgpu",
            display_name="AMDGPU",
            language="julia",
            prompt_phrase="AMDGPU",
            target=ExecutionTarget.GPU,
            introduced=2021,
            detection_markers=("using AMDGPU", "ROCArray", "@roc", "workitemIdx"),
            required_markers=("AMDGPU",),
            notes="AMDGPU.jl",
            tags=("vendor",),
        ),
        _m(
            uid="julia.kernelabstractions",
            display_name="KernelAbstractions",
            language="julia",
            prompt_phrase="KernelAbstractions",
            target=ExecutionTarget.BOTH,
            introduced=2020,
            detection_markers=("using KernelAbstractions", "@kernel", "@index", "KernelAbstractions"),
            required_markers=("@kernel",),
            notes="KernelAbstractions.jl",
            tags=("abstraction",),
        ),
    ]
}


#: The paper's 19 model uids, frozen — never affected by registration.
STOCK_MODEL_UIDS: tuple[str, ...] = tuple(PROGRAMMING_MODELS.keys())


def register_model(model: ProgrammingModel) -> None:
    """Append an extension programming model to the registry (idempotent).

    New models land *after* every stock model (dict insertion order), so
    the stock table enumeration — and the per-cell seeding of every stock
    cell — is unchanged.  Re-registering a uid with different attributes
    is an error; stock models cannot be replaced.
    """
    existing = PROGRAMMING_MODELS.get(model.uid)
    if existing is not None:
        if existing == model:
            return
        raise ValueError(f"model {model.uid!r} is already registered with different attributes")
    get_language(model.language)  # validate the language exists
    PROGRAMMING_MODELS[model.uid] = model


def unregister_model(uid: str) -> None:
    """Remove an extension model (idempotent; stock models refuse)."""
    if uid in STOCK_MODEL_UIDS:
        raise ValueError(f"cannot unregister stock model {uid!r}")
    PROGRAMMING_MODELS.pop(uid, None)


def get_model(uid: str) -> ProgrammingModel:
    """Look up a programming model by uid (``"cpp.openmp"``) or by
    ``"<language> <name>"`` (``"cpp openmp"``)."""
    key = uid.strip().lower().replace(" ", ".")
    if key in PROGRAMMING_MODELS:
        return PROGRAMMING_MODELS[key]
    raise KeyError(
        f"unknown programming model {uid!r}; known: {', '.join(PROGRAMMING_MODELS)}"
    )


def models_for_language(language: str) -> tuple[ProgrammingModel, ...]:
    """All models for a language, in table order."""
    lang = get_language(language).name
    return tuple(m for m in PROGRAMMING_MODELS.values() if m.language == lang)


def model_names(language: str | None = None) -> tuple[str, ...]:
    """All model uids, optionally restricted to one language."""
    if language is None:
        return tuple(PROGRAMMING_MODELS.keys())
    return tuple(m.uid for m in models_for_language(language))
