"""Quickstart: evaluate one Copilot-style prompt end to end.

Builds the prompt ``GEMV OpenMP function`` (as in the paper's Section 3),
asks the simulated Codex engine for up to ten suggestions, analyzes each one
and prints the proficiency score the paper's rubric assigns to the set.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.codex.engine import SimulatedCodex
from repro.codex.prompt import Prompt
from repro.core.evaluator import PromptEvaluator
from repro.models.grid import ExperimentCell


def main() -> None:
    cell = ExperimentCell(language="cpp", model="cpp.openmp", kernel="gemv", use_postfix=True)
    prompt = Prompt.from_cell(cell)
    print(f"Prompt file : {prompt.filename}")
    print(f"Prompt text : {prompt.text}")
    print()

    engine = SimulatedCodex(seed=20230414)
    evaluator = PromptEvaluator(engine=engine)
    result = evaluator.evaluate_cell(cell)

    print(f"Engine competence estimate : {result.competence:.2f}")
    print(f"Suggestions returned       : {result.n_suggestions}")
    print(f"Correct suggestions        : {result.n_correct}")
    print(f"Proficiency score          : {result.score} ({result.level.label})")
    print()
    for idx, (code, verdict) in enumerate(zip(result.suggestions, result.verdicts), start=1):
        first_line = next((ln for ln in code.splitlines() if ln.strip()), "<empty>")
        print(f"  suggestion {idx}: {verdict.summary():40s} | {first_line.strip()[:60]}")


if __name__ == "__main__":
    main()
