"""Use the numerical kernel substrate as a small HPC library.

The kernels that the paper asks Copilot to generate are implemented in
:mod:`repro.kernels` as a standalone, tested library.  This example solves a
3-D Poisson problem two ways — Jacobi smoothing and conjugate gradients on
the CSR operator — and reports convergence and throughput, the kind of
workload the paper's introduction motivates.

Run with:  python examples/hpc_kernels_demo.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.kernels.cg import conjugate_gradient
from repro.kernels.jacobi import jacobi3d_solve
from repro.kernels.sparse import poisson_3d
from repro.kernels.spmv import spmv


def main() -> None:
    n = 10  # 10^3 = 1000 unknowns
    operator = poisson_3d(n)
    rng = np.random.default_rng(42)
    x_true = rng.standard_normal(operator.n_rows)
    b = operator.matvec(x_true)

    print(f"3-D Poisson operator: {operator.shape[0]} unknowns, {operator.nnz} non-zeros")

    # Conjugate gradients on the CSR operator.
    start = time.perf_counter()
    result = conjugate_gradient(operator, b, tol=1e-10, record_history=True)
    elapsed = time.perf_counter() - start
    error = np.linalg.norm(result.x - x_true) / np.linalg.norm(x_true)
    print(
        f"CG      : {result.iterations:4d} iterations, relative error {error:.2e}, "
        f"{elapsed * 1e3:7.1f} ms"
    )

    # Jacobi smoothing of a random field (fixed boundaries).
    field = rng.standard_normal((n, n, n))
    start = time.perf_counter()
    _, iterations, update_norm = jacobi3d_solve(field, max_iterations=200, tol=1e-6)
    elapsed = time.perf_counter() - start
    print(
        f"Jacobi  : {iterations:4d} sweeps, final update norm {update_norm:.2e}, "
        f"{elapsed * 1e3:7.1f} ms"
    )

    # Raw SpMV throughput.
    x = rng.standard_normal(operator.n_cols)
    start = time.perf_counter()
    repeats = 200
    for _ in range(repeats):
        y = spmv(operator, x)
    elapsed = time.perf_counter() - start
    gflops = 2.0 * operator.nnz * repeats / elapsed / 1e9
    print(f"SpMV    : {repeats} products, {gflops:6.2f} GFLOP/s sustained, checksum {y.sum():+.3e}")


if __name__ == "__main__":
    main()
