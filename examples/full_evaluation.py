"""Reproduce the paper's full evaluation (Tables 2-5 and Figure 6).

Runs every cell of the Table 1 grid — 204 prompts across C++, Fortran,
Python and Julia — renders each table next to the published values, prints
the overall Figure 6 averages and the shape-agreement summary, and writes
the raw per-cell records to ``results/`` as CSV and JSON.

Run with:  python examples/full_evaluation.py
"""

from __future__ import annotations

from pathlib import Path

from repro.api import Session
from repro.harness.io import save_records_csv, save_records_json
from repro.models.languages import get_language, language_names


def main() -> None:
    with Session(seed=20230414) as session:
        results = session.full_results()

        for number, language in zip((2, 3, 4, 5), language_names()):
            report = session.table(number)
            print(report.text)
            comparison = report.comparison
            display = get_language(language).display_name
            print(
                f"--> {display}: rank correlation {comparison.cell_rank_correlation:+.2f}, "
                f"{comparison.within_one_level:.0%} of cells within one rubric level, "
                f"top model agrees: {comparison.top_model_agrees}"
            )
            print()

        print(session.overall_figure().text)

    out_dir = Path(__file__).resolve().parent.parent / "results"
    csv_path = save_records_csv(results, out_dir / "full_grid.csv")
    json_path = save_records_json(results, out_dir / "full_grid.json")
    print(f"\nPer-cell records written to {csv_path} and {json_path}")


if __name__ == "__main__":
    main()
