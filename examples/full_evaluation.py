"""Reproduce the paper's full evaluation (Tables 2-5 and Figure 6).

Runs every cell of the Table 1 grid — 204 prompts across C++, Fortran,
Python and Julia — renders each table next to the published values, prints
the overall Figure 6 averages, and writes the raw per-cell records to
``results/`` as CSV and JSON.

The run goes through a persistent verdict store under ``results/``: the
first (cold) session analyzes and sandbox-executes every suggestion and
populates the store; a second (warm) session — with the in-memory memo
cleared, exactly like a brand-new process — serves every verdict from disk,
performs zero sandbox executions, and reproduces the records byte-for-byte.
The cold-vs-warm timing is printed at the end.

Run with:  python examples/full_evaluation.py
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis.analyzer import clear_verdict_memo
from repro.api import Session, VerdictStore
from repro.harness.io import save_records_csv, save_records_json
from repro.models.languages import get_language, language_names

SEED = 20230414


def main() -> None:
    out_dir = Path(__file__).resolve().parent.parent / "results"
    store_dir = out_dir / "verdict-store"

    # Cold pass: empty caches, every suggestion analyzed and (for Python)
    # sandbox-executed; verdicts are written through to the on-disk store.
    # The store survives under results/, so clear it first — otherwise a
    # second invocation of this script would start warm and the cold-vs-warm
    # comparison below would demonstrate nothing.
    VerdictStore(store_dir).clear()
    clear_verdict_memo()
    with Session(seed=SEED, verdict_store=store_dir) as session:
        start = time.perf_counter()
        results = session.full_results()
        cold_seconds = time.perf_counter() - start
        cold_executions = session.sandbox_executions

        for number, language in zip((2, 3, 4, 5), language_names()):
            report = session.table(number)
            print(report.text)
            comparison = report.comparison
            display = get_language(language).display_name
            print(
                f"--> {display}: rank correlation {comparison.cell_rank_correlation:+.2f}, "
                f"{comparison.within_one_level:.0%} of cells within one rubric level, "
                f"top model agrees: {comparison.top_model_agrees}"
            )
            print()

        print(session.overall_figure().text)

    # Warm pass: clearing the memo puts this session in the position of a
    # brand-new process — everything must come from the on-disk store.
    clear_verdict_memo()
    with Session(seed=SEED, verdict_store=store_dir) as warm:
        start = time.perf_counter()
        warm_results = warm.full_results()
        warm_seconds = time.perf_counter() - start
        identical = warm_results.to_records() == results.to_records()
        print(
            f"\nverdict store: cold {cold_seconds:.2f}s ({cold_executions} sandbox "
            f"executions) -> warm {warm_seconds:.2f}s ({warm.sandbox_executions} "
            f"sandbox executions, {warm.store_hits} store hits, "
            f"x{cold_seconds / warm_seconds:.1f} faster)"
        )
        print(f"warm records byte-identical to cold: {identical}")
        assert identical and warm.sandbox_executions == 0

    csv_path = save_records_csv(results, out_dir / "full_grid.csv")
    json_path = save_records_json(results, out_dir / "full_grid.json")
    print(f"\nPer-cell records written to {csv_path} and {json_path}")


if __name__ == "__main__":
    main()
