"""Execute generated GPU-Python suggestions on the simulated device.

The paper notes that the successful cuPy and pyCUDA suggestions embed a raw
CUDA kernel as a user-defined kernel.  This example takes the cuPy
``RawKernel`` and pyCUDA ``SourceModule`` implementations from the corpus,
runs them through the sandbox (numpy-backed fake runtimes + the miniature
CUDA-C interpreter), and verifies them against the numerical oracles — the
same path the evaluation uses to judge Python suggestions.

Run with:  python examples/python_kernel_execution.py
"""

from __future__ import annotations

import numpy as np

from repro.corpus.templates import get_template
from repro.kernels.registry import KERNEL_NAMES
from repro.sandbox import evaluate_python_suggestion, get_task
from repro.sandbox.cuda_c import CudaModule


def run_corpus_suggestions() -> None:
    print("Executing corpus suggestions against the oracles:")
    for model in ("numpy", "numba", "cupy", "pycuda"):
        for kernel in KERNEL_NAMES:
            code = get_template("python", model, kernel)
            result = evaluate_python_suggestion(code, kernel)
            status = "PASS" if result.passed else f"FAIL ({'; '.join(result.issues)})"
            print(f"  {model:7s} {kernel:7s} -> {status}")
    print()


def run_raw_cuda_kernel() -> None:
    print("Driving the CUDA-C interpreter directly:")
    source = """
    extern "C" __global__
    void spmv(const int n, const int *row_ptr, const int *col_idx,
              const double *values, const double *x, double *y)
    {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) {
            double sum = 0.0;
            for (int j = row_ptr[i]; j < row_ptr[i + 1]; j++) {
                sum += values[j] * x[col_idx[j]];
            }
            y[i] = sum;
        }
    }
    """
    task = get_task("spmv")
    row_ptr, col_idx, values, x = task.fresh_args()
    n = len(row_ptr) - 1
    y = np.zeros(n)
    kernel = CudaModule(source).get_kernel("spmv")
    kernel.launch(((n + 127) // 128,), (128,), (n, row_ptr, col_idx, values, x, y))
    error = float(np.max(np.abs(y - task.expected)))
    print(f"  simulated SpMV kernel over {n} rows: max |error| = {error:.2e}")


def main() -> None:
    run_corpus_suggestions()
    run_raw_cuda_kernel()


if __name__ == "__main__":
    main()
