"""Dispatch the grid through the shard driver, "crash" it, and resume.

Demonstrates the crash-safe distributed workflow of :mod:`repro.dispatch`:

1. a :class:`ShardDriver` partitions the run, dispatches the shards and
   streams the merge — every completed shard is persisted to a
   :class:`ResultStore` *before* it is announced, so the crash window never
   loses finished work,
2. the first driver is "killed" mid-run (``max_shards`` — the deterministic
   stand-in for ``kill -9`` that the ``dispatch-resume`` CI job uses too),
3. a second driver pointed at the same store **skips every completed
   shard**, finishes the rest, and its merged records are byte-identical to
   an unsharded run,
4. a third, fully-warm driver executes nothing at all, and
5. the same work is pushed through a ``file-queue`` — the backend any
   remote host can drain with ``repro-hpc-codex dispatch-worker``.

Run with:  python examples/dispatch_resume.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.analysis.analyzer import clear_verdict_memo
from repro.api import ExperimentSpec, Session
from repro.dispatch import FileQueue, ResultStore, ShardDriver, drain_queue

N_SHARDS = 4


def run_driver(spec: ExperimentSpec, store_dir: Path, **kwargs):
    """One driver run in a "fresh process" (cleared in-memory memo)."""
    clear_verdict_memo()
    start = time.perf_counter()
    report = ShardDriver(
        spec,
        shards=N_SHARDS,
        result_store=ResultStore(store_dir),
        on_shard=lambda outcome: print(
            f"    shard [{outcome.entry.start:3d}, {outcome.entry.stop:3d}) "
            f"<- {outcome.source:7s} in {outcome.seconds:.2f}s"
        ),
        **kwargs,
    ).run()
    print(f"  {report.summary()} in {time.perf_counter() - start:.2f}s")
    return report


def main() -> None:
    spec = ExperimentSpec(seeds=(20230414,))
    print(f"grid: {len(spec.cells())} cells, fingerprint {spec.fingerprint()}")

    clear_verdict_memo()
    with Session(seed=spec.seed) as session:
        expected = session.run(spec).to_records()

    with tempfile.TemporaryDirectory(prefix="repro-dispatch-") as tmp:
        store_dir = Path(tmp) / "results"

        print(f"\ndriver 1: killed after 2 of {N_SHARDS} shards (crash simulation)")
        killed = run_driver(spec, store_dir, max_shards=2)
        assert not killed.complete and len(killed.executed) == 2

        print("\ndriver 2: same store — resumes instead of recomputing")
        resumed = run_driver(spec, store_dir)
        assert resumed.complete
        assert len(resumed.skipped) == 2 and len(resumed.executed) == 2
        identical = resumed.result().to_records() == expected
        print(f"  byte-identical to the unsharded run: {identical}")
        assert identical

        print("\ndriver 3: fully warm — zero shards executed")
        warm = run_driver(spec, store_dir)
        assert warm.complete and not warm.executed and len(warm.skipped) == N_SHARDS
        assert warm.result().to_records() == expected

    with tempfile.TemporaryDirectory(prefix="repro-queue-") as tmp:
        queue = FileQueue(Path(tmp) / "queue")
        print("\nfile queue: a 'remote host' drains the tasks a driver published")
        for shard in spec.partition(N_SHARDS):
            queue.publish(shard)
        drained = drain_queue(queue)  # in production: dispatch-worker elsewhere
        print(f"  remote worker evaluated {drained} task(s)")
        clear_verdict_memo()
        report = ShardDriver(
            spec, shards=N_SHARDS, backend="file-queue", queue=queue
        ).run()
        print(f"  {report.summary()}")
        assert report.complete and len(report.remote) == N_SHARDS
        assert report.result().to_records() == expected
        print("  merged byte-identically from remote payloads: True")


if __name__ == "__main__":
    main()
