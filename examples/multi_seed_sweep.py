"""Multi-seed statistical sweep: point estimates -> interval estimates.

The paper reports one proficiency score per grid cell from one sampling
run.  This walkthrough repeats the Julia table over three seeds with
``Session.sweep_seeds``, prints each cell's mean with its bootstrap
confidence interval, and then demonstrates the two determinism properties
that make sweeps distributable (docs/api.md, "Statistical sweeps"):

* the summary is invariant to seed order — and to the order each
  per-seed ``ResultSet`` was merged from shards;
* a single-seed sweep degrades exactly to the point estimates of a plain
  run (``mean == ci_low == ci_high``, no bootstrap drawn).

Run with:  PYTHONPATH=src python examples/multi_seed_sweep.py
"""

from __future__ import annotations

from repro.api import Session, summarize_sweep

SEEDS = [1, 2, 3]
LANGUAGE = "julia"


def main() -> None:
    with Session() as session:
        summary = session.sweep_seeds(SEEDS, languages=[LANGUAGE], n_resamples=500)

        print(f"{LANGUAGE} grid over seeds {SEEDS}: "
              f"{len(summary.cells)} cells, "
              f"{summary.confidence:.0%} bootstrap CI")
        for stats in summary.cells:
            postfix = "+kw" if stats.use_postfix else ""
            scores = " ".join(f"{s:.2f}" for s in stats.scores)
            print(f"  {stats.model + ':' + stats.kernel + postfix:42s}"
                  f" mean={stats.mean:.3f}"
                  f" ci=[{stats.ci_low:.3f}, {stats.ci_high:.3f}]"
                  f"  scores: {scores}")
        print(f"grand mean of cell means: {summary.mean_of_means():.4f}")
        print()

        # Seed-order invariance: the same seeds in any order summarise
        # identically (per-seed results are content-keyed, the summary
        # sorts seeds before aggregating).
        per_seed = session.sweep(SEEDS, languages=[LANGUAGE])
        shuffled = dict(reversed(list(per_seed.items())))
        assert summarize_sweep(shuffled, n_resamples=500) == summary
        print("seed-order invariance      : OK (reversed dict, identical summary)")

        # Single-seed degradation: every statistic collapses to the plain
        # run's score.
        single = session.sweep_seeds([SEEDS[0]], languages=[LANGUAGE])
        plain = session.language_results(LANGUAGE, seed=SEEDS[0])
        for result in plain:
            cell = result.cell
            stats = single.cell(cell.model, cell.kernel, use_postfix=cell.use_postfix)
            assert stats.mean == stats.ci_low == stats.ci_high == result.score
        print("single-seed degradation    : OK (mean == ci_low == ci_high == score)")


if __name__ == "__main__":
    main()
