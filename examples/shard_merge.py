"""Shard the experiment grid across "machines" and merge the partial results.

Demonstrates the distributed-evaluation workflow of :mod:`repro.api`:

1. declare the run once as an :class:`ExperimentSpec`,
2. partition it into shards, each carrying a manifest entry
   ``(seed, fingerprint, cell_slice)``,
3. evaluate every shard in its own :class:`Session` (here sequentially; in a
   real deployment each shard's JSON payload would come from a different
   machine via ``repro-hpc-codex shard``), all sharing one persistent
   verdict store — the way a fleet would share a mounted cache directory,
4. validate the manifest and merge — the merged records are byte-identical
   to an unsharded run, whatever order the shards arrive in,
5. re-run every shard warm: the shared store serves all verdicts, so the
   second pass performs zero sandbox executions and is visibly faster.

Run with:  python examples/shard_merge.py
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.analysis.analyzer import clear_verdict_memo
from repro.api import ExperimentSpec, Session, merge_shard_payloads, shard_payload

N_MACHINES = 3


def evaluate_all_shards(spec: ExperimentSpec, store_dir: Path) -> tuple[list[dict], float, int]:
    """One pass over every shard, each in its own Session sharing the store.

    Clearing the verdict memo before each shard puts every "machine" in the
    position of a separate process: only the on-disk store is shared.
    Returns (payloads, total seconds, total sandbox executions).
    """
    payloads = []
    total_seconds = 0.0
    total_executions = 0
    for shard in spec.partition(N_MACHINES):
        clear_verdict_memo()
        with Session(seed=shard.seed, verdict_store=store_dir) as session:
            start = time.perf_counter()
            results = session.run(shard)
            seconds = time.perf_counter() - start
            total_seconds += seconds
            total_executions += session.sandbox_executions
            print(
                f"  machine {shard.index}: cells [{shard.start}, {shard.stop}) "
                f"-> {len(results)} records in {seconds:.2f}s "
                f"({session.sandbox_executions} sandbox executions, "
                f"{session.store_hits} store hits)"
            )
        payload = shard_payload(shard, results)
        payloads.append(json.loads(json.dumps(payload)))  # simulate the wire
    return payloads, total_seconds, total_executions


def main() -> None:
    spec = ExperimentSpec(seeds=(20230414,))
    print(f"grid: {len(spec.cells())} cells, fingerprint {spec.fingerprint()}")

    with tempfile.TemporaryDirectory(prefix="repro-verdicts-") as tmp:
        store_dir = Path(tmp) / "verdicts"

        print(f"\ncold pass ({N_MACHINES} machines, empty shared store):")
        payloads, cold_seconds, cold_executions = evaluate_all_shards(spec, store_dir)

        # Merge in arbitrary arrival order; the manifest check runs first.
        merged = merge_shard_payloads(reversed(payloads))[spec.seed]

        clear_verdict_memo()
        with Session(seed=spec.seed) as session:
            unsharded = session.run(spec)
        identical = merged.to_records() == unsharded.to_records()
        print(f"\nmerged {N_MACHINES} shards -> {len(merged)} cells")
        print(f"byte-identical to the unsharded run: {identical}")
        assert identical

        print("\nwarm pass (same machines, store now populated):")
        warm_payloads, warm_seconds, warm_executions = evaluate_all_shards(spec, store_dir)
        print(
            f"\nverdict store: cold {cold_seconds:.2f}s ({cold_executions} sandbox "
            f"executions) -> warm {warm_seconds:.2f}s ({warm_executions} sandbox "
            f"executions, x{cold_seconds / warm_seconds:.1f} faster)"
        )
        assert warm_executions == 0
        assert warm_payloads == payloads  # warm shard payloads are byte-identical


if __name__ == "__main__":
    main()
