"""Shard the experiment grid across "machines" and merge the partial results.

Demonstrates the distributed-evaluation workflow of :mod:`repro.api`:

1. declare the run once as an :class:`ExperimentSpec`,
2. partition it into shards, each carrying a manifest entry
   ``(seed, fingerprint, cell_slice)``,
3. evaluate every shard in its own :class:`Session` (here sequentially; in a
   real deployment each shard's JSON payload would come from a different
   machine via ``repro-hpc-codex shard``),
4. validate the manifest and merge — the merged records are byte-identical
   to an unsharded run, whatever order the shards arrive in.

Run with:  python examples/shard_merge.py
"""

from __future__ import annotations

import json

from repro.api import ExperimentSpec, Session, merge_shard_payloads, shard_payload

N_MACHINES = 3


def main() -> None:
    spec = ExperimentSpec(seeds=(20230414,))
    print(f"grid: {len(spec.cells())} cells, fingerprint {spec.fingerprint()}")

    # "Each machine" evaluates one shard and emits a JSON payload.
    payloads = []
    for shard in spec.partition(N_MACHINES):
        with Session(seed=shard.seed) as session:
            results = session.run(shard)
        payload = shard_payload(shard, results)
        payloads.append(json.loads(json.dumps(payload)))  # simulate the wire
        print(
            f"  machine {shard.index}: cells [{shard.start}, {shard.stop}) "
            f"-> {len(results)} records, mean score {results.mean_score():.3f}"
        )

    # Merge in arbitrary arrival order; the manifest check runs first.
    merged = merge_shard_payloads(reversed(payloads))[spec.seed]

    with Session(seed=spec.seed) as session:
        unsharded = session.run(spec)
    identical = merged.to_records() == unsharded.to_records()
    print(f"\nmerged {N_MACHINES} shards -> {len(merged)} cells")
    print(f"byte-identical to the unsharded run: {identical}")
    assert identical


if __name__ == "__main__":
    main()
