"""Prompt engineering study: how the post-fix keyword changes the outcome.

The paper's central prompt-engineering finding is that the right *code
keyword* (``subroutine`` for Fortran, ``def`` for Python, ``function`` for
C++) dramatically changes suggestion quality — and that the wrong vocabulary
(``function`` for CUDA, whose community says "kernel") can hurt.  This
example evaluates a small set of prompts in both variants and prints the
score changes, then shows the engine's analytic expectation for each case.

Run with:  python examples/prompt_engineering.py
"""

from __future__ import annotations

from repro.codex.config import CodexConfig
from repro.codex.engine import SimulatedCodex
from repro.codex.prompt import Prompt
from repro.core.evaluator import PromptEvaluator
from repro.models.grid import ExperimentCell
from repro.models.keywords import postfix_keyword

CASES = [
    ("fortran", "fortran.openmp", "gemv"),
    ("fortran", "fortran.openacc", "jacobi"),
    ("python", "python.numpy", "cg"),
    ("python", "python.pycuda", "spmv"),
    ("cpp", "cpp.openmp", "gemm"),
    ("cpp", "cpp.cuda", "gemm"),
]


def main() -> None:
    config = CodexConfig()
    engine = SimulatedCodex(config=config, seed=20230414)
    evaluator = PromptEvaluator(engine=engine)

    header = f"{'prompt':35s} {'bare':>6s} {'+keyword':>9s} {'E[bare]':>8s} {'E[+kw]':>8s}"
    print(header)
    print("-" * len(header))
    for language, model, kernel in CASES:
        keyword = postfix_keyword(language)
        bare_cell = ExperimentCell(language=language, model=model, kernel=kernel, use_postfix=False)
        kw_cell = ExperimentCell(language=language, model=model, kernel=kernel, use_postfix=True)
        bare = evaluator.evaluate_cell(bare_cell)
        keyed = evaluator.evaluate_cell(kw_cell)
        expected_bare = config.expected_score(Prompt.from_cell(bare_cell))
        expected_kw = config.expected_score(Prompt.from_cell(kw_cell))
        label = f"{kernel.upper()} {model} (+{keyword})"
        print(f"{label:35s} {bare.score:>6.2f} {keyed.score:>9.2f} {expected_bare:>8.2f} {expected_kw:>8.2f}")

    print()
    print("Note how the keyword rescues Fortran and Python prompts, barely moves")
    print("plain C++/OpenMP, and *lowers* the CUDA GEMM expectation — 'function'")
    print("is not the word the CUDA community uses for a kernel.")


if __name__ == "__main__":
    main()
